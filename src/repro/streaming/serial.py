"""Serial array-section streaming: one task performs all I/O.

The pieces of the section are produced in stream order and *appended* —
no seek needed, so serial streaming works over sequential channels
(sockets, tape).  All data funnels through the single I/O task, which is
exactly why the paper adds the parallel variant.

The byte shuffling itself is vectorized: one bulk
:func:`~repro.streaming.vectorized.gather_section_flat` (or scatter)
per operation assembles the whole section through cached index-array
plans, and each piece is a contiguous interval of that flat buffer —
the per-piece loop only appends/reads and accounts.  The piece
granularity of the *I/O calls* is preserved: appends stay sequential
per piece, so fault plans addressing the nth write of a serially
streamed file keep their meaning.

Gather strictness: elements of a section assigned to no task are
*undefined*; by default they stream as zeros (the paper's semantics —
a checkpoint of a partially-defined array is well-formed, the holes
just carry no information).  Under :func:`strict_gather` an undefined
element inside a gathered piece raises instead — the verify oracle
enables this for cases whose arrays are fully defined, turning silent
zero-fill of data that *should* exist into a hard failure.  The scope
is a :class:`contextvars.ContextVar`: concurrent streaming ops on
other threads (an mlck async drain riding the shared executor pool)
never observe a strictness scope they are not inside, and the executor
propagates the submitting thread's context to its workers.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import get_flight, get_tracer
from repro.streaming.order import check_order
from repro.streaming.streams import ByteSink, ByteSource
from repro.streaming.vectorized import (
    gather_section_flat,
    range_redistribution_bytes,
    scatter_section_flat,
)

__all__ = [
    "StreamStats",
    "stream_out_serial",
    "stream_in_serial",
    "gather_piece",
    "scatter_piece",
    "strict_gather",
]

#: gather strictness scope; per-context so concurrent streaming ops on
#: other threads (e.g. an async drain) are unaffected — executor workers
#: inherit the submitting thread's context (see streaming.executor)
_STRICT_GATHER: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "strict_gather", default=False
)


@contextmanager
def strict_gather(enabled: bool = True) -> Iterator[None]:
    """Scope the gather strictness default: within the context,
    :func:`gather_piece` raises on undefined elements instead of
    zero-filling them."""
    token = _STRICT_GATHER.set(bool(enabled))
    try:
        yield
    finally:
        _STRICT_GATHER.reset(token)


def _strict_default() -> bool:
    return _STRICT_GATHER.get()


@dataclass
class StreamStats:
    """Accounting for one streaming operation.  ``pieces`` counts the
    pieces actually streamed (empty pieces of the plan are skipped)."""

    pieces: int
    bytes_streamed: int
    #: bytes moved between distinct tasks to marshal pieces
    redistribution_bytes: int
    io_tasks: int

    def publish(self, direction: str, engine: str = "serial") -> "StreamStats":
        """Feed this operation's accounting into the active metrics
        registry (``direction`` is ``"out"`` or ``"in"``) — StreamStats
        stays the return value, the registry carries the totals.  An
        active flight recorder also gets one engine-tagged ``stream_op``
        ring entry with the byte counts."""
        m = get_tracer().metrics
        m.counter(f"stream.{direction}.bytes").inc(self.bytes_streamed)
        m.counter(f"stream.{direction}.pieces").inc(self.pieces)
        m.counter("stream.redistribution.bytes").inc(self.redistribution_bytes)
        fr = get_flight()
        if fr.enabled:
            fr.record(
                "stream_op",
                direction=direction,
                engine=engine,
                nbytes=self.bytes_streamed,
                pieces=self.pieces,
                redistribution_bytes=self.redistribution_bytes,
                io_tasks=self.io_tasks,
            )
        return self


def gather_piece(
    darray: DistributedArray,
    piece: Slice,
    order: str = "F",
    strict: Optional[bool] = None,
) -> np.ndarray:
    """Assemble one piece (shaped like the piece) from its owner tasks.
    Elements assigned to no task are undefined; they stream as zeros —
    unless ``strict`` (or the :func:`strict_gather` scope) is on, in
    which case undefined elements raise ``StreamingError``.  Assigned
    sections are pairwise disjoint, so the covered count is an exact
    element count, not an upper bound."""
    check_order(order)
    if strict is None:
        strict = _strict_default()
    flat = gather_section_flat(darray, piece, order=order, strict=strict)
    return flat.reshape(piece.shape, order=order)


def scatter_piece(
    darray: DistributedArray,
    piece: Slice,
    values: np.ndarray,
    order: str = "F",
) -> None:
    """Deliver one piece into every task whose mapped section overlaps
    it — all copies of each element are updated consistently.
    ``order`` only selects the cached index plan used for the delivery
    (pass the surrounding stream order to share plans with it); the
    result is order-independent."""
    check_order(order)
    flat = np.asarray(values).reshape(-1, order=order)
    scatter_section_flat(darray, piece, flat, order=order)


def _piece_redistribution_bytes(
    darray: DistributedArray, piece: Slice, io_task: int
) -> int:
    """Scalar redistribution accounting for one piece (slice algebra
    over the owners).  The streaming loops use the plan-interval form
    (:func:`~repro.streaming.vectorized.range_redistribution_bytes`);
    this is the independent reference the tests compare against."""
    dist = darray.distribution
    return sum(
        dist.assigned(owner).intersect(piece).size * darray.itemsize
        for owner in dist.owner_tasks(piece)
        if owner != io_task
    )


def _cached_plan(section: Slice, itemsize: int, target_bytes: int, min_pieces: int, order: str):
    """(pieces, offsets) via the active plan cache.  Imported lazily:
    the cache layer sits above the pure streaming layer, and a top-level
    import would cycle through ``streaming/__init__``."""
    from repro.plancache.plans import streaming_plan

    return streaming_plan(
        section, itemsize, target_bytes=target_bytes,
        min_pieces=min_pieces, order=order,
    )


def _index_plan(darray: DistributedArray, section: Slice, order: str):
    """The section's "assigned" index plan via the active plan cache,
    or None for virtual arrays: a geometry-only array never gathers, so
    materializing O(section) index vectors purely for accounting would
    cost exactly the memory the virtual mode exists to avoid.  Callers
    fall back to the scalar slice-algebra accounting on None."""
    if not darray.store_data:
        return None
    from repro.plancache.plans import section_index_plan

    return section_index_plan(darray.distribution, section, order=order)


def _piece_redis(darray, plan_idx, piece, lo_el, io_task):
    """Redistribution bytes of one piece toward ``io_task`` — interval
    counting on the index plan when one exists, slice algebra for
    virtual arrays."""
    if plan_idx is not None:
        return range_redistribution_bytes(
            plan_idx, lo_el, lo_el + piece.size, io_task, darray.itemsize
        )
    return _piece_redistribution_bytes(darray, piece, io_task)


def _require_full_read(
    data: bytes, nbytes: int, source: ByteSource, needs_data: bool
) -> None:
    """A read must return exactly the bytes asked for.  The only
    legitimate exception: a *virtual* PFS source restoring a virtual
    (geometry-only) array returns no payload by design — the PFS
    accounted the bytes.  A virtual source can never satisfy an array
    that needs data, and a real source must never come up short even
    when only geometry is being restored (a metadata-only restore over
    a truncated source must not silently advance past the hole)."""
    if len(data) == nbytes:
        return
    if not needs_data and getattr(source, "virtual", False):
        return
    raise StreamingError(
        f"short read: wanted {nbytes} bytes, got {len(data)}"
    )


def stream_out_serial(
    darray: DistributedArray,
    sink: ByteSink,
    section: Optional[Slice] = None,
    order: str = "F",
    io_task: int = 0,
    target_bytes: int = 1 << 20,
) -> StreamStats:
    """Stream ``darray[section]`` out through a single task."""
    check_order(order)
    section = section or Slice.full(darray.shape)
    pieces, offsets = _cached_plan(section, darray.itemsize, target_bytes, 1, order)
    jobs = [(j, p) for j, p in enumerate(pieces) if not p.is_empty]
    itemsize = darray.itemsize
    plan_idx = _index_plan(darray, section, order)
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.out.serial",
        array=darray.name,
        io_task=io_task,
        plan_pieces=len(pieces),
    ) as op:
        flat_u8 = None
        if darray.store_data and jobs:
            flat = gather_section_flat(
                darray, section, order=order,
                strict=_strict_default(), plan=plan_idx,
            )
            flat_u8 = flat.view(np.uint8)
        for j, piece in jobs:
            nbytes = piece.size * itemsize
            redis += _piece_redis(
                darray, plan_idx, piece, offsets[j] // itemsize, io_task
            )
            if flat_u8 is not None:
                sink.append(
                    flat_u8[offsets[j]:offsets[j] + nbytes].tobytes(),
                    client=io_task,
                )
            else:
                sink.append(None, nbytes=nbytes, client=io_task)
            total += nbytes
        op.set(pieces=len(jobs), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(jobs), bytes_streamed=total, redistribution_bytes=redis, io_tasks=1
    ).publish("out")


def stream_in_serial(
    darray: DistributedArray,
    source: ByteSource,
    section: Optional[Slice] = None,
    order: str = "F",
    io_task: int = 0,
    target_bytes: int = 1 << 20,
    source_offset: int = 0,
) -> StreamStats:
    """Stream a section into ``darray`` through a single task, reading
    sequentially starting at ``source_offset``.  The scatter is applied
    once, after every piece read back whole — a short read aborts the
    operation with the target array untouched."""
    check_order(order)
    section = section or Slice.full(darray.shape)
    pieces, offsets = _cached_plan(section, darray.itemsize, target_bytes, 1, order)
    jobs = [(j, p) for j, p in enumerate(pieces) if not p.is_empty]
    itemsize = darray.itemsize
    plan_idx = _index_plan(darray, section, order)
    obs = get_tracer()
    pos = source_offset
    total = 0
    redis = 0
    with obs.span(
        "stream.in.serial",
        array=darray.name,
        io_task=io_task,
        plan_pieces=len(pieces),
    ) as op:
        flat = (
            np.empty(section.size, dtype=darray.dtype)
            if darray.store_data and jobs
            else None
        )
        flat_u8 = flat.view(np.uint8) if flat is not None else None
        for j, piece in jobs:
            nbytes = piece.size * itemsize
            redis += _piece_redis(
                darray, plan_idx, piece, offsets[j] // itemsize, io_task
            )
            data = source.read_at(pos, nbytes, client=io_task)
            _require_full_read(data, nbytes, source, darray.store_data)
            if flat_u8 is not None:
                flat_u8[offsets[j]:offsets[j] + nbytes] = np.frombuffer(
                    data, dtype=np.uint8
                )
            pos += nbytes
            total += nbytes
        if flat is not None:
            scatter_section_flat(darray, section, flat, order=order)
        op.set(pieces=len(jobs), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(jobs), bytes_streamed=total, redistribution_bytes=redis, io_tasks=1
    ).publish("in")
