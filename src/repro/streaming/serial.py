"""Serial array-section streaming: one task performs all I/O.

The pieces of the section are produced in stream order and *appended* —
no seek needed, so serial streaming works over sequential channels
(sockets, tape).  All data funnels through the single I/O task, which is
exactly why the paper adds the parallel variant.

Gather strictness: elements of a section assigned to no task are
*undefined*; by default they stream as zeros (the paper's semantics —
a checkpoint of a partially-defined array is well-formed, the holes
just carry no information).  Under :func:`strict_gather` an undefined
element inside a gathered piece raises instead — the verify oracle
enables this for cases whose arrays are fully defined, turning silent
zero-fill of data that *should* exist into a hard failure.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import get_tracer
from repro.streaming.order import bytes_to_section, check_order, stream_order_bytes
from repro.streaming.streams import ByteSink, ByteSource

__all__ = [
    "StreamStats",
    "stream_out_serial",
    "stream_in_serial",
    "gather_piece",
    "scatter_piece",
    "strict_gather",
]

#: module default for gather strictness; set via :func:`strict_gather`
#: on the coordinating thread before any streaming op starts (executor
#: worker threads only read it)
_STRICT_GATHER = False


@contextmanager
def strict_gather(enabled: bool = True) -> Iterator[None]:
    """Scope the gather strictness default: within the context,
    :func:`gather_piece` raises on undefined elements instead of
    zero-filling them."""
    global _STRICT_GATHER
    previous = _STRICT_GATHER
    _STRICT_GATHER = bool(enabled)
    try:
        yield
    finally:
        _STRICT_GATHER = previous


@dataclass
class StreamStats:
    """Accounting for one streaming operation."""

    pieces: int
    bytes_streamed: int
    #: bytes moved between distinct tasks to marshal pieces
    redistribution_bytes: int
    io_tasks: int

    def publish(self, direction: str) -> "StreamStats":
        """Feed this operation's accounting into the active metrics
        registry (``direction`` is ``"out"`` or ``"in"``) — StreamStats
        stays the return value, the registry carries the totals."""
        m = get_tracer().metrics
        m.counter(f"stream.{direction}.bytes").inc(self.bytes_streamed)
        m.counter(f"stream.{direction}.pieces").inc(self.pieces)
        m.counter("stream.redistribution.bytes").inc(self.redistribution_bytes)
        return self


def gather_piece(
    darray: DistributedArray,
    piece: Slice,
    order: str = "F",
    strict: Optional[bool] = None,
) -> np.ndarray:
    """Assemble one piece (shaped like the piece) from its owner tasks.
    Elements assigned to no task are undefined; they stream as zeros —
    unless ``strict`` (or the :func:`strict_gather` scope) is on, in
    which case undefined elements raise ``StreamingError``.  Assigned
    sections are pairwise disjoint, so the covered count is an exact
    element count, not an upper bound."""
    check_order(order)
    if strict is None:
        strict = _STRICT_GATHER
    buf = np.zeros(piece.shape, dtype=darray.dtype)
    dist = darray.distribution
    covered = 0
    for owner in dist.owner_tasks(piece):
        sec = dist.assigned(owner).intersect(piece)
        if sec.is_empty:
            continue
        buf[sec.local_index_within(piece)] = darray.section_from_task(
            owner, sec
        ).reshape(sec.shape)
        covered += sec.size
    if strict and covered < piece.size:
        raise StreamingError(
            f"strict gather: piece {piece} has {piece.size - covered} "
            f"undefined element(s) (no owning task) in array "
            f"{darray.name!r}"
        )
    return buf


def scatter_piece(darray: DistributedArray, piece: Slice, values: np.ndarray) -> None:
    """Deliver one piece into every task whose mapped section overlaps
    it — all copies of each element are updated consistently."""
    dist = darray.distribution
    for t in range(dist.ntasks):
        sec = dist.mapped(t).intersect(piece)
        if sec.is_empty:
            continue
        darray.section_to_task(t, sec, values[sec.local_index_within(piece)])


def _piece_redistribution_bytes(
    darray: DistributedArray, piece: Slice, io_task: int
) -> int:
    dist = darray.distribution
    return sum(
        dist.assigned(owner).intersect(piece).size * darray.itemsize
        for owner in dist.owner_tasks(piece)
        if owner != io_task
    )


def _cached_plan(section: Slice, itemsize: int, target_bytes: int, min_pieces: int, order: str):
    """(pieces, offsets) via the active plan cache.  Imported lazily:
    the cache layer sits above the pure streaming layer, and a top-level
    import would cycle through ``streaming/__init__``."""
    from repro.plancache.plans import streaming_plan

    return streaming_plan(
        section, itemsize, target_bytes=target_bytes,
        min_pieces=min_pieces, order=order,
    )


def stream_out_serial(
    darray: DistributedArray,
    sink: ByteSink,
    section: Optional[Slice] = None,
    order: str = "F",
    io_task: int = 0,
    target_bytes: int = 1 << 20,
) -> StreamStats:
    """Stream ``darray[section]`` out through a single task."""
    check_order(order)
    section = section or Slice.full(darray.shape)
    pieces, _ = _cached_plan(section, darray.itemsize, target_bytes, 1, order)
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.out.serial", array=darray.name, io_task=io_task
    ) as op:
        for j, piece in enumerate(pieces):
            if piece.is_empty:
                continue
            nbytes = piece.size * darray.itemsize
            piece_redis = _piece_redistribution_bytes(darray, piece, io_task)
            with obs.span(
                f"piece[{j}]", nbytes=nbytes, redistribution_bytes=piece_redis
            ):
                if darray.store_data:
                    buf = gather_piece(darray, piece, order)
                    sink.append(stream_order_bytes(buf, order), client=io_task)
                else:
                    sink.append(None, nbytes=nbytes, client=io_task)
            redis += piece_redis
            total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces), bytes_streamed=total, redistribution_bytes=redis, io_tasks=1
    ).publish("out")


def stream_in_serial(
    darray: DistributedArray,
    source: ByteSource,
    section: Optional[Slice] = None,
    order: str = "F",
    io_task: int = 0,
    target_bytes: int = 1 << 20,
    source_offset: int = 0,
) -> StreamStats:
    """Stream a section into ``darray`` through a single task, reading
    sequentially starting at ``source_offset``."""
    check_order(order)
    section = section or Slice.full(darray.shape)
    pieces, _ = _cached_plan(section, darray.itemsize, target_bytes, 1, order)
    obs = get_tracer()
    pos = source_offset
    total = 0
    redis = 0
    with obs.span(
        "stream.in.serial", array=darray.name, io_task=io_task
    ) as op:
        for j, piece in enumerate(pieces):
            if piece.is_empty:
                continue
            nbytes = piece.size * darray.itemsize
            piece_redis = _piece_redistribution_bytes(darray, piece, io_task)
            with obs.span(
                f"piece[{j}]", nbytes=nbytes, redistribution_bytes=piece_redis
            ):
                data = source.read_at(pos, nbytes, client=io_task)
                if darray.store_data:
                    if len(data) != nbytes:
                        raise StreamingError(
                            f"short read: wanted {nbytes} bytes, got {len(data)}"
                        )
                    values = bytes_to_section(data, piece.shape, darray.dtype, order)
                    scatter_piece(darray, piece, values)
            redis += piece_redis
            pos += nbytes
            total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces), bytes_streamed=total, redistribution_bytes=redis, io_tasks=1
    ).publish("in")
