"""Byte sink/source abstractions for streaming targets.

Serial streaming only appends, so it runs over any sequential channel;
parallel streaming writes at computed offsets, so its sink must be
*seekable* (paper Section 3.2).  PIOFS files provide seekable sinks;
:class:`MemorySink` models both a seekable buffer and a sequential
socket/tape-like channel.

Thread safety: the concurrent parstream executor
(:mod:`repro.streaming.parallel`) issues ``write_at`` calls from a
thread pool.  :class:`MemorySink` serializes buffer growth behind a
per-sink lock; :class:`PFSSink` inherits the PIOFS namespace lock.
Distinct pieces land at distinct offsets, so locking only has to make
the extend-then-copy sequence atomic — content never races.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.errors import StreamingError
from repro.pfs.piofs import PIOFS

__all__ = ["ByteSink", "ByteSource", "MemorySink", "MemorySource", "PFSSink", "PFSSource"]


def _check_payload(data: Optional[bytes], nbytes: Optional[int]) -> None:
    """A caller passing both ``data`` and ``nbytes`` must pass them
    consistently: silently preferring one corrupts stream accounting
    (offsets are precomputed from the sizes the caller claimed)."""
    if data is not None and nbytes is not None and nbytes != len(data):
        raise StreamingError(
            f"inconsistent write: nbytes={nbytes} but payload is "
            f"{len(data)} bytes"
        )


class ByteSink:
    """Write-side interface."""

    seekable: bool = True

    def write_at(self, offset: int, data: Optional[bytes], nbytes: Optional[int] = None, client: int = 0) -> None:
        raise NotImplementedError

    def append(self, data: Optional[bytes], nbytes: Optional[int] = None, client: int = 0) -> None:
        raise NotImplementedError


class ByteSource:
    """Read-side interface."""

    def read_at(self, offset: int, nbytes: int, client: int = 0) -> bytes:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError


class MemorySink(ByteSink):
    """In-memory sink; ``seekable=False`` models a socket or tape drive."""

    def __init__(self, seekable: bool = True):
        self.seekable = bool(seekable)
        self._buf = bytearray()
        self._lock = threading.Lock()

    def write_at(self, offset, data, nbytes=None, client=0):
        """Write at an absolute offset (appends only when non-seekable)."""
        if data is None:
            raise StreamingError("memory sink requires real bytes")
        _check_payload(data, nbytes)
        with self._lock:
            if not self.seekable and offset != len(self._buf):
                raise StreamingError(
                    "non-seekable sink only supports sequential appends"
                )
            end = offset + len(data)
            if end > len(self._buf):
                self._buf.extend(b"\x00" * (end - len(self._buf)))
            self._buf[offset:end] = data

    def append(self, data, nbytes=None, client=0):
        """Sequential append to the buffer."""
        if data is None:
            raise StreamingError("memory sink requires real bytes")
        _check_payload(data, nbytes)
        with self._lock:
            self._buf.extend(data)

    def getvalue(self) -> bytes:
        with self._lock:
            return bytes(self._buf)


class MemorySource(ByteSource):
    """In-memory read-side source over a bytes buffer."""
    def __init__(self, data: bytes):
        self._data = bytes(data)

    def read_at(self, offset, nbytes, client=0):
        """Read a byte span from the in-memory source."""
        if offset < 0 or offset + nbytes > len(self._data):
            raise StreamingError("read outside memory source")
        return self._data[offset : offset + nbytes]

    @property
    def size(self) -> int:
        return len(self._data)


class PFSSink(ByteSink):
    """Sink writing into a (possibly virtual) PIOFS file.  Concurrent
    ``write_at`` calls are safe: PIOFS serializes behind its namespace
    lock and the executor writes distinct pieces at distinct offsets."""

    def __init__(self, pfs: PIOFS, name: str, virtual: bool = False, create: bool = True):
        self.pfs = pfs
        self.name = name
        self.virtual = virtual
        if create:
            pfs.create(name, virtual=virtual)

    def write_at(self, offset, data, nbytes=None, client=0):
        _check_payload(data, nbytes)
        self.pfs.write_at(self.name, offset, data, nbytes=nbytes, client=client)

    def append(self, data, nbytes=None, client=0):
        _check_payload(data, nbytes)
        self.pfs.append(self.name, data, nbytes=nbytes, client=client)


class PFSSource(ByteSource):
    """Source reading from a PIOFS file; virtual files account reads
    without returning data."""

    def __init__(self, pfs: PIOFS, name: str):
        self.pfs = pfs
        self.name = name
        self.virtual = pfs.open(name).virtual

    def read_at(self, offset, nbytes, client=0):
        """Read from the PFS file (accounting-only for virtual files)."""
        if self.virtual:
            self.pfs.read_virtual(self.name, offset, nbytes, client=client)
            return b""
        return self.pfs.read_at(self.name, offset, nbytes, client=client)

    @property
    def size(self) -> int:
        return self.pfs.file_size(self.name)
