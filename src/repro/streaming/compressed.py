"""Compressed serial streams: the third §6 optimization.

The paper lists data compression among the optimizations that "can be
equally applied to DRMS checkpointing".  This module applies it at the
stream layer: :class:`CompressedSink` zlib-compresses each appended
piece into a self-describing frame ``[raw_len u32][comp_len u32]
[deflate bytes]``; :class:`CompressedSource` transparently decompresses
on sequential reads.  Framing keeps the *logical* stream identical to
the uncompressed one, so serial stream-out/stream-in round-trips across
any pair of distributions exactly as before — only the bytes on the
wire/disk shrink.

Compression is inherently sequential (frame sizes depend on content),
so it composes with *serial* streaming and sequential channels; the
parallel parstream path needs fixed piece offsets and stays
uncompressed.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from repro.errors import StreamingError
from repro.streaming.streams import ByteSink, ByteSource

__all__ = ["CompressedSink", "CompressedSource"]

_HEADER = struct.Struct("<II")  # raw length, compressed length


class CompressedSink(ByteSink):
    """Frames and deflates every append into an inner sink."""

    seekable = False

    def __init__(self, inner: ByteSink, level: int = 6):
        if not 0 <= level <= 9:
            raise StreamingError(f"zlib level must be 0..9, got {level}")
        self.inner = inner
        self.level = level
        #: logical (uncompressed) bytes accepted so far
        self.raw_bytes = 0
        #: physical bytes emitted (frames included)
        self.compressed_bytes = 0

    def append(self, data, nbytes=None, client=0):
        """Deflate one piece into a framed record on the inner sink."""
        if data is None:
            raise StreamingError("compression needs real bytes")
        comp = zlib.compress(bytes(data), self.level)
        frame = _HEADER.pack(len(data), len(comp))
        self.inner.append(frame, client=client)
        self.inner.append(comp, client=client)
        self.raw_bytes += len(data)
        self.compressed_bytes += len(frame) + len(comp)

    def write_at(self, offset, data, nbytes=None, client=0):
        """Sequential-only write (compressed streams cannot seek)."""
        if offset != self.raw_bytes:
            raise StreamingError(
                "compressed streams are sequential; parallel streaming "
                "requires fixed offsets and must stay uncompressed"
            )
        self.append(data, nbytes=nbytes, client=client)

    @property
    def ratio(self) -> float:
        """Achieved compression ratio (raw / physical)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


class CompressedSource(ByteSource):
    """Sequentially inflates frames from an inner source.

    Reads may straddle frames; an internal buffer reassembles the
    logical stream so callers see exactly the uncompressed bytes."""

    def __init__(self, inner: ByteSource):
        self.inner = inner
        self._inner_pos = 0
        self._logical_pos = 0
        self._buffer = bytearray()

    def read_at(self, offset: int, nbytes: int, client: int = 0) -> bytes:
        """Sequential read of the logical (decompressed) stream."""
        if offset != self._logical_pos:
            raise StreamingError(
                f"compressed stream is sequential (read at {offset}, "
                f"stream at {self._logical_pos})"
            )
        while len(self._buffer) < nbytes:
            self._inflate_one_frame(client)
        out = bytes(self._buffer[:nbytes])
        del self._buffer[:nbytes]
        self._logical_pos += nbytes
        return out

    def _inflate_one_frame(self, client: int) -> None:
        header = self.inner.read_at(self._inner_pos, _HEADER.size, client=client)
        if len(header) < _HEADER.size:
            raise StreamingError("compressed stream truncated mid-header")
        raw_len, comp_len = _HEADER.unpack(header)
        self._inner_pos += _HEADER.size
        comp = self.inner.read_at(self._inner_pos, comp_len, client=client)
        self._inner_pos += comp_len
        try:
            raw = zlib.decompress(comp)
        except zlib.error as exc:
            raise StreamingError(f"corrupt compressed frame: {exc}") from exc
        if len(raw) != raw_len:
            raise StreamingError(
                f"frame declared {raw_len} raw bytes, inflated to {len(raw)}"
            )
        self._buffer.extend(raw)

    @property
    def size(self) -> int:
        raise StreamingError("compressed streams expose no logical size")
