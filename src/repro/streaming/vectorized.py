"""Vectorized bulk gather/scatter over precomputed index-array plans.

The scalar hot path assembled every piece with nested Python loops:
for each owner task, intersect, build an ``np.ix_`` mesh, copy a small
block.  At bench piece sizes (KB-scale) the interpreter overhead of
those loops — not the byte copies — dominated the parstream executor
(BENCH_parstream.json: threads_vs_serial 0.87–0.97).

This module replaces the loops with single fancy-indexed numpy copies
driven by a **section index plan**: for a (distribution, section,
order) triple and a coverage kind, the plan holds per overlapping task
two parallel int64 vectors

* ``spos``  — stream positions of the overlap's elements within the
  section's stream (``order``-major over the section's own mesh);
* ``lflat`` — flat positions of the same elements within the task's
  C-contiguous local array (which stores the task's *mapped* section).

Both vectors enumerate the overlap in its own ``order``-major stream,
so the element correspondence is positional and

* gather is ``flat[spos] = local_flat[lflat]`` per owner
  (kind ``"assigned"``; owners are pairwise disjoint), and
* scatter is ``local_flat[lflat] = flat[spos]`` per mapping task
  (kind ``"mapped"``; overlapping copies all receive the same value).

Plans depend only on distribution geometry, so they are cached in
:mod:`repro.plancache` (kind ``"indexplan"``, keyed by the distribution
fingerprint) and invalidated with the distribution.  The sorted copy of
``spos`` carried per entry turns per-piece redistribution accounting
into two binary searches per owner (:func:`range_redistribution_bytes`)
— pieces of the Fig. 5a partition are stream-contiguous, so a piece is
exactly a stream-position interval.

Memory note: a bulk gather materializes the whole section (the plan
vectors are O(section) as well).  The simulated machine is in-process —
every task's local array is already resident — so this trades a
bounded, same-order allocation for the removal of the per-piece
interpreter loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import Distribution
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.streaming.order import check_order

__all__ = [
    "PlanEntry",
    "SectionIndexPlan",
    "build_section_index_plan",
    "gather_section_flat",
    "scatter_section_flat",
    "range_redistribution_bytes",
]

#: coverage kinds: "assigned" drives gather (ownership; disjoint),
#: "mapped" drives scatter (delivery; may overlap across tasks)
_KINDS = ("assigned", "mapped")


@dataclass(frozen=True)
class PlanEntry:
    """One task's share of a section index plan (all arrays read-only)."""

    task: int
    #: stream positions within the section, in the overlap's own stream
    spos: np.ndarray
    #: flat positions within the task's C-contiguous local array, in the
    #: same enumeration — positional correspondence with ``spos``
    lflat: np.ndarray
    #: ``np.sort(spos)`` — interval counting for accounting
    spos_sorted: np.ndarray


@dataclass(frozen=True)
class SectionIndexPlan:
    """Cached index arrays for one (distribution, section, order, kind)."""

    section_size: int
    kind: str
    entries: Tuple[PlanEntry, ...]
    #: total overlap elements; exact coverage for "assigned" (owners are
    #: pairwise disjoint), an upper bound for "mapped"
    covered: int


def build_section_index_plan(
    dist: Distribution,
    section: Slice,
    order: str = "F",
    kind: str = "assigned",
) -> SectionIndexPlan:
    """Compute the index-array plan (pure; cached via
    :func:`repro.plancache.plans.section_index_plan`)."""
    check_order(order)
    if kind not in _KINDS:
        raise StreamingError(
            f"unknown index-plan kind {kind!r}; expected one of {_KINDS}"
        )
    entries = []
    covered = 0
    tasks = (
        dist.owner_tasks(section)
        if kind == "assigned"
        else dist.mapped_tasks(section)
    )
    for t in tasks:
        base = dist.assigned(t) if kind == "assigned" else dist.mapped(t)
        sec = base.intersect(section)
        if sec.is_empty:
            continue
        spos = sec.flat_positions_within(
            section, enum_order=order, address_order=order
        )
        lflat = sec.flat_positions_within(
            dist.mapped(t), enum_order=order, address_order="C"
        )
        spos_sorted = np.sort(spos)
        for v in (spos, lflat, spos_sorted):
            v.setflags(write=False)
        entries.append(PlanEntry(t, spos, lflat, spos_sorted))
        covered += sec.size
    return SectionIndexPlan(
        section_size=section.size,
        kind=kind,
        entries=tuple(entries),
        covered=covered,
    )


def _cached_index_plan(
    dist: Distribution, section: Slice, order: str, kind: str
) -> SectionIndexPlan:
    """Plan via the active cache.  Imported lazily: the cache layer
    sits above the pure streaming layer."""
    from repro.plancache.plans import section_index_plan

    return section_index_plan(dist, section, order=order, kind=kind)


def gather_section_flat(
    darray: DistributedArray,
    section: Slice,
    order: str = "F",
    strict: bool = False,
    plan: SectionIndexPlan | None = None,
) -> np.ndarray:
    """The section's elements as one 1-D array in stream order, copied
    from the owner tasks with one fancy-indexed assignment per owner.
    Elements assigned to no task are zeros, or raise under ``strict``
    (the :func:`repro.streaming.serial.strict_gather` semantics)."""
    check_order(order)
    if plan is None:
        plan = _cached_index_plan(darray.distribution, section, order, "assigned")
    if strict and plan.covered < plan.section_size:
        raise StreamingError(
            f"strict gather: section {section} has "
            f"{plan.section_size - plan.covered} undefined element(s) "
            f"(no owning task) in array {darray.name!r}"
        )
    flat = np.zeros(plan.section_size, dtype=darray.dtype)
    for e in plan.entries:
        flat[e.spos] = darray.local_flat(e.task)[e.lflat]
    return flat


def scatter_section_flat(
    darray: DistributedArray,
    section: Slice,
    flat: np.ndarray,
    order: str = "F",
    plan: SectionIndexPlan | None = None,
) -> None:
    """Deliver a stream-ordered 1-D value vector into every task whose
    mapped section overlaps ``section`` — all copies of every element
    are updated consistently, one fancy-indexed assignment per task."""
    check_order(order)
    if plan is None:
        plan = _cached_index_plan(darray.distribution, section, order, "mapped")
    flat = np.asarray(flat)
    if flat.size != plan.section_size:
        raise StreamingError(
            f"scatter of {flat.size} values into a section of "
            f"{plan.section_size} elements"
        )
    for e in plan.entries:
        darray.local_flat(e.task)[e.lflat] = flat[e.spos]


def range_redistribution_bytes(
    plan: SectionIndexPlan, lo: int, hi: int, io_task: int, itemsize: int
) -> int:
    """Bytes of stream interval ``[lo, hi)`` (element positions) owned
    by tasks other than ``io_task`` — the redistribution cost of that
    interval reaching I/O task ``io_task``.  Requires an "assigned"
    plan; undefined elements (no owner) move nothing, matching the
    scalar accounting."""
    moved = 0
    for e in plan.entries:
        if e.task == io_task:
            continue
        a, b = np.searchsorted(e.spos_sorted, (lo, hi))
        moved += int(b - a)
    return moved * itemsize
