"""Serial streaming over real sequential channels.

The paper (Section 3.2): "serial streaming can be performed through a
sequential channel, such as a UNIX socket or tape drive", because it
only ever appends.  This module provides an actual socket-backed
channel: :class:`SocketChannel` wraps a connected ``socket.socketpair``
as a (non-seekable) :class:`~repro.streaming.streams.ByteSink` on one
end and a :class:`~repro.streaming.streams.ByteSource`-like sequential
reader on the other — so a distributed array can be streamed out of one
"application" and into another through a live byte pipe, the DRMS
inter-application transport.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional

from repro.errors import StreamingError
from repro.streaming.streams import ByteSink, ByteSource

__all__ = ["SocketChannel", "SocketSink", "SocketSource"]


class SocketSink(ByteSink):
    """Append-only sink writing into a connected socket."""

    seekable = False

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._pos = 0

    def append(self, data, nbytes=None, client=0):
        """Send the bytes down the socket (sequential append)."""
        if data is None:
            raise StreamingError("socket channels carry real bytes only")
        self._sock.sendall(data)
        self._pos += len(data)

    def write_at(self, offset, data, nbytes=None, client=0):
        """Sequential-only write (sockets cannot seek)."""
        if offset != self._pos:
            raise StreamingError(
                f"socket channel cannot seek (write at {offset}, stream at {self._pos})"
            )
        self.append(data, nbytes=nbytes, client=client)

    def close(self) -> None:
        """Shut down the write end, signalling EOF to the reader."""
        try:
            self._sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        self._sock.close()


class SocketSource(ByteSource):
    """Sequential reader draining the other socket end.

    ``read_at`` enforces sequential access (serial stream-in reads in
    order); a background-free, blocking ``recv`` loop fills each read.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._pos = 0

    def read_at(self, offset: int, nbytes: int, client: int = 0) -> bytes:
        """Sequential blocking read of exactly ``nbytes`` from the socket."""
        if offset != self._pos:
            raise StreamingError(
                f"socket channel is sequential (read at {offset}, stream at {self._pos})"
            )
        chunks = []
        remaining = nbytes
        while remaining > 0:
            chunk = self._sock.recv(min(remaining, 1 << 16))
            if not chunk:
                raise StreamingError(
                    f"channel closed {remaining} bytes short of the read"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        self._pos += nbytes
        return b"".join(chunks)

    @property
    def size(self) -> int:
        raise StreamingError("a live channel has no size")

    def close(self) -> None:
        self._sock.close()


class SocketChannel:
    """A connected in-process byte pipe: ``sink`` on the writing end,
    ``source`` on the reading end.  Stream out on one thread, stream in
    on another (the socket buffer is finite)."""

    def __init__(self):
        w, r = socket.socketpair()
        self.sink = SocketSink(w)
        self.source = SocketSource(r)

    def close(self) -> None:
        self.sink.close()
        self.source.close()

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def pump(self, producer, consumer):
        """Run ``producer(sink)`` on a helper thread while
        ``consumer(source)`` runs on this one; closes the write end when
        the producer finishes and re-raises its exception, if any."""
        error = []

        def run():
            try:
                producer(self.sink)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                error.append(exc)
            finally:
                self.sink.close()

        t = threading.Thread(target=run, name="stream-producer")
        t.start()
        try:
            result = consumer(self.source)
        finally:
            t.join(timeout=30)
        if error:
            raise error[0]
        return result
