"""Recursive stream-order partition of a slice (paper Fig. 5a).

``partition(x, m)`` splits slice ``x`` into ``m = 2**k`` sub-slices such
that concatenating their streams in order reproduces the stream of
``x``: the split axis is always the slowest-varying axis with more than
one element, so every element of ``lo`` precedes every element of ``hi``
in the stream.

``partition_for_target`` chooses ``m`` the way DRMS does: the smallest
power of two giving pieces of at most ``target_bytes`` (≈1 MB in the
paper, balancing parallelism and buffer memory against per-operation
overhead), but never fewer pieces than the number of I/O tasks.
"""

from __future__ import annotations

from typing import List

from repro.arrays.slices import Slice
from repro.errors import StreamingError

__all__ = ["partition", "partition_for_target", "piece_offsets"]


def partition(x: Slice, m: int, order: str = "F") -> List[Slice]:
    """Split ``x`` into ``m`` stream-contiguous pieces; ``m`` must be a
    power of two (the recursive halving of Fig. 5a).  Pieces may be
    empty when ``m`` exceeds the splittable extent; empty pieces are
    always the canonical ``Slice.empty`` (a degenerate input slice with
    a zero-extent axis may carry non-empty ranges on other axes, which
    must not leak into the partition)."""
    if m < 1 or (m & (m - 1)) != 0:
        raise StreamingError(f"partition count must be a power of two, got {m}")
    pieces = [x if x.size else Slice.empty(x.rank)]
    while len(pieces) < m:
        nxt: List[Slice] = []
        for p in pieces:
            if p.size > 1:
                nxt.append(p.lo(order))
                nxt.append(p.hi(order))
            else:
                # both halves guarded: a singleton keeps its element in
                # the lo slot, an exhausted piece yields two canonical
                # empties — never lo()/hi() of an already-empty slice
                nxt.append(p if p.size == 1 else Slice.empty(p.rank))
                nxt.append(Slice.empty(p.rank))
        pieces = nxt
    return pieces


def partition_for_target(
    x: Slice,
    itemsize: int,
    target_bytes: int = 1 << 20,
    min_pieces: int = 1,
    order: str = "F",
) -> List[Slice]:
    """Pick ``m`` per the paper's rule (≈``target_bytes`` per piece, at
    least ``min_pieces`` for parallelism) and partition."""
    if itemsize < 1:
        raise StreamingError("itemsize must be positive")
    if target_bytes < 1:
        raise StreamingError("target_bytes must be positive")
    total = x.size * itemsize
    m = 1
    while total / m > target_bytes or m < min_pieces:
        m *= 2
        if m > max(1, x.size):
            break
    return partition(x, m, order)


def piece_offsets(pieces: List[Slice], itemsize: int) -> List[int]:
    """Byte offset of each piece in the output stream: the sum of the
    sizes of all earlier pieces (the paper's starting-position rule)."""
    out: List[int] = []
    pos = 0
    for p in pieces:
        out.append(pos)
        pos += p.size * itemsize
    return out
