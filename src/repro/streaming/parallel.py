"""Parallel array-section streaming: the ``parstream`` algorithm
(paper Fig. 5b).

The section is partitioned into ``m >= P`` stream-contiguous pieces of
roughly ``target_bytes`` each (1 MB in the paper).  Piece ``j`` belongs
to I/O task ``p = j % P`` (rounds of ``P``): the task receives the piece
through a canonical redistribution (an array assignment onto an
auxiliary distribution that makes the piece wholly local), then writes
it at the piece's stream offset — the sum of the sizes of the earlier
pieces.  The output is byte-identical to serial streaming; only the
access pattern differs, which is why parallel streaming requires a
seekable sink.

Execution engines (the ``concurrency`` parameter):

* ``"threads"`` (default) — the section is bulk-gathered once through
  the cached index-array plans (:mod:`repro.streaming.vectorized`),
  the nonempty pieces are coalesced into at most P stream-contiguous
  byte runs of near-equal volume, and the P I/O tasks run as a thread
  pool, each issuing **one** bulk ``write_at``/``read_at`` for its run.
  Empty pieces occupy zero bytes, so the nonempty pieces are
  byte-contiguous in stream order and every run is a single interval.
* ``"vectorized"`` — the same bulk-gather + coalesced-run pipeline,
  executed inline on the calling thread: no pool dispatch, the right
  choice when cores are scarce or the caller is already a pool worker.
* ``"serial"`` — the deterministic per-piece round-robin loop.  Also
  entered automatically (from either other mode) when the sink's PFS
  has fault injection armed: fault plans address the *nth matching
  write*, which only means something over a deterministic write
  sequence, so the per-piece write granularity and ``j % P`` client
  attribution are preserved exactly.

Correctness relies on three structural facts: pieces are disjoint in
the global index space (gather/scatter never race on an element),
offsets are disjoint in the stream (writes never race on a byte), and
sinks serialize internal bookkeeping behind their own locks.  Because
every piece's bytes and offset are fixed by the plan, all engines are
byte-identical for every interleaving — the property the verify oracle
checks, made cheap to compare by the ``content_sha1`` op-span
attribute: an order-stable digest-of-digests over the per-piece SHA-1s,
computed identically (and always, including the serial fallback) in
every engine.

Virtual (geometry-only) arrays keep the legacy per-piece round-robin
paths in every mode: there is nothing to gather, and the per-piece
transfer granularity is what the simulated Class-A baselines account.

``P`` may be anything from 1 (fully serial) to the number of tasks;
tasks beyond ``P`` still participate in redistribution (their assigned
data must reach the I/O tasks) but perform no I/O.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import get_tracer
from repro.streaming.executor import faults_armed, run_tasks
from repro.streaming.order import check_order
from repro.streaming.serial import (
    StreamStats,
    _cached_plan,
    _index_plan,
    _piece_redis,
    _require_full_read,
    _strict_default,
)
from repro.streaming.streams import ByteSink, ByteSource
from repro.streaming.vectorized import (
    gather_section_flat,
    range_redistribution_bytes,
    scatter_section_flat,
)

__all__ = ["stream_out_parallel", "stream_in_parallel"]

#: accepted values for the ``concurrency`` parameter
_MODES = ("threads", "serial", "vectorized")


def _plan(
    darray: DistributedArray,
    section: Optional[Slice],
    P: Optional[int],
    order: str,
    target_bytes: int,
):
    check_order(order)
    section = section or Slice.full(darray.shape)
    ntasks = darray.ntasks
    if P is None:
        P = ntasks
    if not 1 <= P <= ntasks:
        raise StreamingError(
            f"I/O task count P={P} must be within 1..{ntasks} (the task pool)"
        )
    pieces, offsets = _cached_plan(section, darray.itemsize, target_bytes, P, order)
    return section, P, pieces, offsets


def _check_mode(concurrency: str) -> str:
    if concurrency not in _MODES:
        raise StreamingError(
            f"unknown concurrency mode {concurrency!r}; expected one of {_MODES}"
        )
    return concurrency


def _coalesced_runs(
    jobs: List[Tuple[int, Slice]], itemsize: int, P: int
) -> List[List[Tuple[int, Slice]]]:
    """Split the nonempty pieces into at most ``P`` stream-contiguous
    runs of near-equal byte volume — run ``p`` is I/O task ``p``'s
    single bulk transfer."""
    total = sum(piece.size for _, piece in jobs) * itemsize
    target = -(-total // P)  # ceil: every run but the last fills up
    runs: List[List[Tuple[int, Slice]]] = []
    cur: List[Tuple[int, Slice]] = []
    cur_bytes = 0
    for j, piece in jobs:
        cur.append((j, piece))
        cur_bytes += piece.size * itemsize
        if cur_bytes >= target and len(runs) < P - 1:
            runs.append(cur)
            cur = []
            cur_bytes = 0
    if cur:
        runs.append(cur)
    return runs


def _content_sha1(digests: List[Tuple[int, str]]) -> str:
    """Order-stable digest-of-digests: the per-piece SHA-1 hexdigests
    sorted by piece index, concatenated, hashed — a fingerprint of the
    piece contents in stream order, cheap to compare across engines."""
    digests.sort()
    return hashlib.sha1(
        "".join(d for _, d in digests).encode("ascii")
    ).hexdigest()


def _pick_engine(darray, endpoint, concurrency: str, jobs) -> str:
    """Resolve the execution engine for this operation.  Fault plans
    force the deterministic serial loop.  Virtual arrays always take
    the per-piece loop in every mode: there is nothing to gather, the
    per-piece transfer granularity and ``j % P`` client attribution are
    what the simulated Class-A phase baselines account, and the
    simulated timing is thread-independent anyway."""
    if faults_armed(endpoint) or not jobs or not darray.store_data:
        return "serial"
    return concurrency


def stream_out_parallel(
    darray: DistributedArray,
    sink: ByteSink,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
    concurrency: str = "threads",
) -> StreamStats:
    """Stream ``darray[section]`` out with ``P`` parallel I/O tasks."""
    _check_mode(concurrency)
    if not getattr(sink, "seekable", True) and (P or darray.ntasks) > 1:
        raise StreamingError(
            "parallel streaming requires a seekable sink; use serial "
            "streaming for sequential channels"
        )
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    jobs = [(j, piece) for j, piece in enumerate(pieces) if not piece.is_empty]
    engine = _pick_engine(darray, sink, concurrency, jobs)
    itemsize = darray.itemsize
    obs = get_tracer()
    total = 0
    redis = 0
    digests: List[Tuple[int, str]] = []
    with obs.span(
        "stream.out.parallel",
        array=darray.name,
        io_tasks=P,
        concurrency=engine,
        plan_pieces=len(pieces),
    ) as op:
        if engine in ("threads", "vectorized"):
            # Bulk path (data-bearing arrays only): one vectorized
            # gather of the whole section, then at most P coalesced
            # writes — run p covers a contiguous byte interval of the
            # stream, so each I/O task issues a single write_at.
            # Worker threads open no spans: the tracer's span stacks
            # are per-thread, so worker spans would surface as
            # parentless roots.  Per-run accounting is aggregated.
            plan_idx = _index_plan(darray, section, order)
            flat = gather_section_flat(
                darray, section, order=order,
                strict=_strict_default(), plan=plan_idx,
            )
            flat_u8 = flat.view(np.uint8)
            runs = _coalesced_runs(jobs, itemsize, P)

            def io_task(p: int):
                run = runs[p]
                start = offsets[run[0][0]]
                nbytes = sum(piece.size for _, piece in run) * itemsize
                t_digests = []
                for j, piece in run:
                    t_digests.append((
                        j,
                        hashlib.sha1(
                            flat_u8[offsets[j]:offsets[j] + piece.size * itemsize]
                        ).hexdigest(),
                    ))
                sink.write_at(
                    start, flat_u8[start:start + nbytes].tobytes(), client=p
                )
                t_redis = range_redistribution_bytes(
                    plan_idx,
                    start // itemsize,
                    (start + nbytes) // itemsize,
                    p,
                    itemsize,
                )
                return nbytes, t_redis, t_digests

            thunks = [lambda p=p: io_task(p) for p in range(len(runs))]
            results = (
                run_tasks(thunks)
                if engine == "threads"
                else [t() for t in thunks]
            )
            for t_bytes, t_redis, d in results:
                total += t_bytes
                redis += t_redis
                digests.extend(d)
        else:
            # Deterministic per-piece round-robin loop: the write
            # sequence and the j % P client attribution are what fault
            # plans and the simulated phase baselines address.
            plan_idx = _index_plan(darray, section, order)
            flat_u8 = None
            if darray.store_data and jobs:
                flat = gather_section_flat(
                    darray, section, order=order,
                    strict=_strict_default(), plan=plan_idx,
                )
                flat_u8 = flat.view(np.uint8)
            for j, piece in jobs:
                p = j % P  # I/O task for this piece (round-robin rounds of P)
                nbytes = piece.size * itemsize
                redis += _piece_redis(
                    darray, plan_idx, piece, offsets[j] // itemsize, p
                )
                if flat_u8 is not None:
                    data = flat_u8[offsets[j]:offsets[j] + nbytes].tobytes()
                    digests.append((j, hashlib.sha1(data).hexdigest()))
                    sink.write_at(offsets[j], data, client=p)
                else:
                    sink.write_at(offsets[j], None, nbytes=nbytes, client=p)
                total += nbytes
        if darray.store_data and digests:
            op.set(content_sha1=_content_sha1(digests))
        op.set(pieces=len(jobs), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(jobs),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("out", engine="parstream")


def stream_in_parallel(
    darray: DistributedArray,
    source: ByteSource,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
    source_offset: int = 0,
    concurrency: str = "threads",
) -> StreamStats:
    """Stream a section into ``darray`` with ``P`` parallel I/O tasks.
    The inverse of :func:`stream_out_parallel`: task ``p`` reads its
    pieces at their stream offsets, then one bulk scatter delivers the
    section to every task mapping part of it.  Concurrent reads fill
    disjoint intervals of the flat buffer, so they never race; the
    scatter is applied once, after every read returned whole — a short
    read aborts with the target array untouched."""
    _check_mode(concurrency)
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    jobs = [(j, piece) for j, piece in enumerate(pieces) if not piece.is_empty]
    engine = _pick_engine(darray, source, concurrency, jobs)
    itemsize = darray.itemsize
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.in.parallel",
        array=darray.name,
        io_tasks=P,
        concurrency=engine,
        plan_pieces=len(pieces),
    ) as op:
        if engine in ("threads", "vectorized"):
            plan_idx = _index_plan(darray, section, order)
            flat = np.empty(section.size, dtype=darray.dtype)
            flat_u8 = flat.view(np.uint8)
            runs = _coalesced_runs(jobs, itemsize, P)

            def io_task(p: int):
                run = runs[p]
                start = offsets[run[0][0]]
                nbytes = sum(piece.size for _, piece in run) * itemsize
                data = source.read_at(source_offset + start, nbytes, client=p)
                _require_full_read(data, nbytes, source, darray.store_data)
                flat_u8[start:start + nbytes] = np.frombuffer(data, dtype=np.uint8)
                t_redis = range_redistribution_bytes(
                    plan_idx,
                    start // itemsize,
                    (start + nbytes) // itemsize,
                    p,
                    itemsize,
                )
                return nbytes, t_redis

            thunks = [lambda p=p: io_task(p) for p in range(len(runs))]
            results = (
                run_tasks(thunks)
                if engine == "threads"
                else [t() for t in thunks]
            )
            for t_bytes, t_redis in results:
                total += t_bytes
                redis += t_redis
            scatter_section_flat(darray, section, flat, order=order)
        else:
            plan_idx = _index_plan(darray, section, order)
            flat = (
                np.empty(section.size, dtype=darray.dtype)
                if darray.store_data and jobs
                else None
            )
            flat_u8 = flat.view(np.uint8) if flat is not None else None
            for j, piece in jobs:
                p = j % P
                nbytes = piece.size * itemsize
                redis += _piece_redis(
                    darray, plan_idx, piece, offsets[j] // itemsize, p
                )
                data = source.read_at(source_offset + offsets[j], nbytes, client=p)
                _require_full_read(data, nbytes, source, darray.store_data)
                if flat_u8 is not None:
                    flat_u8[offsets[j]:offsets[j] + nbytes] = np.frombuffer(
                        data, dtype=np.uint8
                    )
                total += nbytes
            if flat is not None:
                scatter_section_flat(darray, section, flat, order=order)
        op.set(pieces=len(jobs), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(jobs),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("in", engine="parstream")
