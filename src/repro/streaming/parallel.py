"""Parallel array-section streaming: the ``parstream`` algorithm
(paper Fig. 5b).

The section is partitioned into ``m >= P`` stream-contiguous pieces of
roughly ``target_bytes`` each (1 MB in the paper).  Pieces are processed
in rounds of ``P``: in round ``k`` task ``p`` receives piece ``k*P + p``
through a canonical redistribution (an array assignment onto an
auxiliary distribution that makes each piece wholly local to its I/O
task), then writes it at the piece's stream offset — which is just the
sum of the sizes of the earlier pieces.  The output is byte-identical to
serial streaming; only the access pattern differs, which is why parallel
streaming requires a seekable sink.

``P`` may be anything from 1 (fully serial) to the number of tasks;
tasks beyond ``P`` still participate in redistribution (their assigned
data must reach the I/O tasks) but perform no I/O.
"""

from __future__ import annotations

from typing import Optional

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import get_tracer
from repro.streaming.order import bytes_to_section, check_order, stream_order_bytes
from repro.streaming.partition import partition_for_target, piece_offsets
from repro.streaming.serial import (
    StreamStats,
    _piece_redistribution_bytes,
    gather_piece,
    scatter_piece,
)
from repro.streaming.streams import ByteSink, ByteSource

__all__ = ["stream_out_parallel", "stream_in_parallel"]


def _plan(
    darray: DistributedArray,
    section: Optional[Slice],
    P: Optional[int],
    order: str,
    target_bytes: int,
):
    check_order(order)
    section = section or Slice.full(darray.shape)
    ntasks = darray.ntasks
    if P is None:
        P = ntasks
    if not 1 <= P <= ntasks:
        raise StreamingError(
            f"I/O task count P={P} must be within 1..{ntasks} (the task pool)"
        )
    pieces = partition_for_target(
        section, darray.itemsize, target_bytes=target_bytes, min_pieces=P, order=order
    )
    offsets = piece_offsets(pieces, darray.itemsize)
    return section, P, pieces, offsets


def stream_out_parallel(
    darray: DistributedArray,
    sink: ByteSink,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
) -> StreamStats:
    """Stream ``darray[section]`` out with ``P`` parallel I/O tasks."""
    if not getattr(sink, "seekable", True) and (P or darray.ntasks) > 1:
        raise StreamingError(
            "parallel streaming requires a seekable sink; use serial "
            "streaming for sequential channels"
        )
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.out.parallel", array=darray.name, io_tasks=P
    ) as op:
        for j, piece in enumerate(pieces):
            if piece.is_empty:
                continue
            p = j % P  # I/O task for this piece (round-robin rounds of P)
            nbytes = piece.size * darray.itemsize
            piece_redis = _piece_redistribution_bytes(darray, piece, p)
            with obs.span(
                f"piece[{j}]",
                nbytes=nbytes,
                io_task=p,
                redistribution_bytes=piece_redis,
            ):
                if darray.store_data:
                    buf = gather_piece(darray, piece, order)
                    sink.write_at(offsets[j], stream_order_bytes(buf, order), client=p)
                else:
                    sink.write_at(offsets[j], None, nbytes=nbytes, client=p)
            redis += piece_redis
            total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("out")


def stream_in_parallel(
    darray: DistributedArray,
    source: ByteSource,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
    source_offset: int = 0,
) -> StreamStats:
    """Stream a section into ``darray`` with ``P`` parallel I/O tasks.
    The inverse of :func:`stream_out_parallel`: task ``p`` reads its
    pieces at their stream offsets, then the canonical redistribution
    delivers each piece to every task mapping part of it."""
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.in.parallel", array=darray.name, io_tasks=P
    ) as op:
        for j, piece in enumerate(pieces):
            if piece.is_empty:
                continue
            p = j % P
            nbytes = piece.size * darray.itemsize
            piece_redis = _piece_redistribution_bytes(darray, piece, p)
            with obs.span(
                f"piece[{j}]",
                nbytes=nbytes,
                io_task=p,
                redistribution_bytes=piece_redis,
            ):
                data = source.read_at(source_offset + offsets[j], nbytes, client=p)
                if darray.store_data:
                    if len(data) != nbytes:
                        raise StreamingError(
                            f"short read: wanted {nbytes} bytes, got {len(data)}"
                        )
                    values = bytes_to_section(data, piece.shape, darray.dtype, order)
                    scatter_piece(darray, piece, values)
            redis += piece_redis
            total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("in")
