"""Parallel array-section streaming: the ``parstream`` algorithm
(paper Fig. 5b).

The section is partitioned into ``m >= P`` stream-contiguous pieces of
roughly ``target_bytes`` each (1 MB in the paper).  Piece ``j`` belongs
to I/O task ``p = j % P`` (rounds of ``P``): the task receives the piece
through a canonical redistribution (an array assignment onto an
auxiliary distribution that makes the piece wholly local), then writes
it at the piece's stream offset — the sum of the sizes of the earlier
pieces.  The output is byte-identical to serial streaming; only the
access pattern differs, which is why parallel streaming requires a
seekable sink.

Concurrency: by default (``concurrency="threads"``) the P I/O tasks
run as a thread pool — pieces are gathered, checksummed, and written
concurrently.  Correctness relies on three structural facts: pieces
are disjoint in the global index space (gather/scatter never race on
an element), offsets are disjoint in the stream (writes never race on
a byte), and sinks serialize internal bookkeeping behind their own
locks.  Because each piece's bytes and offset are fixed by the plan,
the result is byte-identical to the serial round-robin loop for every
interleaving — the property the verify oracle checks.

The serial loop is kept (``concurrency="serial"``) and is entered
automatically when the sink's PFS has fault injection armed: fault
plans address the *nth matching write*, which only means something
over a deterministic write sequence.

``P`` may be anything from 1 (fully serial) to the number of tasks;
tasks beyond ``P`` still participate in redistribution (their assigned
data must reach the I/O tasks) but perform no I/O.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import StreamingError
from repro.obs import get_tracer
from repro.streaming.executor import faults_armed, run_tasks
from repro.streaming.order import bytes_to_section, check_order, stream_order_bytes
from repro.streaming.serial import (
    StreamStats,
    _cached_plan,
    _piece_redistribution_bytes,
    gather_piece,
    scatter_piece,
)
from repro.streaming.streams import ByteSink, ByteSource

__all__ = ["stream_out_parallel", "stream_in_parallel"]

#: accepted values for the ``concurrency`` parameter
_MODES = ("threads", "serial")


def _plan(
    darray: DistributedArray,
    section: Optional[Slice],
    P: Optional[int],
    order: str,
    target_bytes: int,
):
    check_order(order)
    section = section or Slice.full(darray.shape)
    ntasks = darray.ntasks
    if P is None:
        P = ntasks
    if not 1 <= P <= ntasks:
        raise StreamingError(
            f"I/O task count P={P} must be within 1..{ntasks} (the task pool)"
        )
    pieces, offsets = _cached_plan(section, darray.itemsize, target_bytes, P, order)
    return section, P, pieces, offsets


def _check_mode(concurrency: str) -> str:
    if concurrency not in _MODES:
        raise StreamingError(
            f"unknown concurrency mode {concurrency!r}; expected one of {_MODES}"
        )
    return concurrency


def stream_out_parallel(
    darray: DistributedArray,
    sink: ByteSink,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
    concurrency: str = "threads",
) -> StreamStats:
    """Stream ``darray[section]`` out with ``P`` parallel I/O tasks."""
    _check_mode(concurrency)
    if not getattr(sink, "seekable", True) and (P or darray.ntasks) > 1:
        raise StreamingError(
            "parallel streaming requires a seekable sink; use serial "
            "streaming for sequential channels"
        )
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    jobs = [(j, piece) for j, piece in enumerate(pieces) if not piece.is_empty]
    threaded = concurrency == "threads" and P > 1 and len(jobs) > 1 and not faults_armed(sink)
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.out.parallel",
        array=darray.name,
        io_tasks=P,
        concurrency="threads" if threaded else "serial",
    ) as op:
        if threaded:
            # One thunk per I/O task, each walking its round-robin share
            # of the pieces in order — the paper's P concurrent I/O
            # tasks, with O(P) dispatch overhead.  Worker threads open
            # no spans: the tracer's span stacks are per-thread, so
            # worker spans would surface as parentless roots.  Per-piece
            # accounting is aggregated onto `op`.
            def io_task(p: int):
                t_bytes = 0
                t_redis = 0
                digests = []
                for j, piece in jobs:
                    if j % P != p:
                        continue
                    nbytes = piece.size * darray.itemsize
                    t_redis += _piece_redistribution_bytes(darray, piece, p)
                    if darray.store_data:
                        data = stream_order_bytes(
                            gather_piece(darray, piece, order), order
                        )
                        digests.append((j, hashlib.sha1(data).hexdigest()))
                        sink.write_at(offsets[j], data, client=p)
                    else:
                        sink.write_at(offsets[j], None, nbytes=nbytes, client=p)
                    t_bytes += nbytes
                return t_bytes, t_redis, digests

            results = run_tasks([lambda p=p: io_task(p) for p in range(P)])
            digests = []
            for t_bytes, t_redis, d in results:
                total += t_bytes
                redis += t_redis
                digests.extend(d)
            if darray.store_data and digests:
                # order-stable digest-of-digests: a fingerprint of the
                # piece contents in stream order, cheap to compare across
                # serial/concurrent runs
                digests.sort()
                op.set(
                    content_sha1=hashlib.sha1(
                        "".join(d for _, d in digests).encode("ascii")
                    ).hexdigest()
                )
        else:
            for j, piece in jobs:
                p = j % P  # I/O task for this piece (round-robin rounds of P)
                nbytes = piece.size * darray.itemsize
                piece_redis = _piece_redistribution_bytes(darray, piece, p)
                with obs.span(
                    f"piece[{j}]",
                    nbytes=nbytes,
                    io_task=p,
                    redistribution_bytes=piece_redis,
                ):
                    if darray.store_data:
                        buf = gather_piece(darray, piece, order)
                        sink.write_at(offsets[j], stream_order_bytes(buf, order), client=p)
                    else:
                        sink.write_at(offsets[j], None, nbytes=nbytes, client=p)
                redis += piece_redis
                total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("out")


def stream_in_parallel(
    darray: DistributedArray,
    source: ByteSource,
    section: Optional[Slice] = None,
    P: Optional[int] = None,
    order: str = "F",
    target_bytes: int = 1 << 20,
    source_offset: int = 0,
    concurrency: str = "threads",
) -> StreamStats:
    """Stream a section into ``darray`` with ``P`` parallel I/O tasks.
    The inverse of :func:`stream_out_parallel`: task ``p`` reads its
    pieces at their stream offsets, then the canonical redistribution
    delivers each piece to every task mapping part of it.  Concurrent
    scatter is element-race-free because pieces partition the global
    index space disjointly."""
    _check_mode(concurrency)
    section, P, pieces, offsets = _plan(darray, section, P, order, target_bytes)
    jobs = [(j, piece) for j, piece in enumerate(pieces) if not piece.is_empty]
    threaded = (
        concurrency == "threads" and P > 1 and len(jobs) > 1 and not faults_armed(source)
    )
    obs = get_tracer()
    total = 0
    redis = 0
    with obs.span(
        "stream.in.parallel",
        array=darray.name,
        io_tasks=P,
        concurrency="threads" if threaded else "serial",
    ) as op:
        if threaded:
            def io_task(p: int):
                t_bytes = 0
                t_redis = 0
                for j, piece in jobs:
                    if j % P != p:
                        continue
                    nbytes = piece.size * darray.itemsize
                    t_redis += _piece_redistribution_bytes(darray, piece, p)
                    data = source.read_at(source_offset + offsets[j], nbytes, client=p)
                    if darray.store_data:
                        if len(data) != nbytes:
                            raise StreamingError(
                                f"short read: wanted {nbytes} bytes, got {len(data)}"
                            )
                        values = bytes_to_section(data, piece.shape, darray.dtype, order)
                        scatter_piece(darray, piece, values)
                    t_bytes += nbytes
                return t_bytes, t_redis

            results = run_tasks([lambda p=p: io_task(p) for p in range(P)])
            for t_bytes, t_redis in results:
                total += t_bytes
                redis += t_redis
        else:
            for j, piece in jobs:
                p = j % P
                nbytes = piece.size * darray.itemsize
                piece_redis = _piece_redistribution_bytes(darray, piece, p)
                with obs.span(
                    f"piece[{j}]",
                    nbytes=nbytes,
                    io_task=p,
                    redistribution_bytes=piece_redis,
                ):
                    data = source.read_at(source_offset + offsets[j], nbytes, client=p)
                    if darray.store_data:
                        if len(data) != nbytes:
                            raise StreamingError(
                                f"short read: wanted {nbytes} bytes, got {len(data)}"
                            )
                        values = bytes_to_section(data, piece.shape, darray.dtype, order)
                        scatter_piece(darray, piece, values)
                redis += piece_redis
                total += nbytes
        op.set(pieces=len(pieces), nbytes=total, redistribution_bytes=redis)
    return StreamStats(
        pieces=len(pieces),
        bytes_streamed=total,
        redistribution_bytes=redis,
        io_tasks=P,
    ).publish("in")
