"""Thread-pool execution of independent piece tasks.

The parstream algorithm makes pieces independent by construction: the
Fig. 5a partition is disjoint in the global index space and the
running-sum offsets are disjoint in the stream, so gather/write (and
read/scatter) of distinct pieces never touch the same element or byte.
That independence is what this module exploits.  Callers submit one
thunk per *I/O task* (each thunk walks its own round-robin share of
the pieces in order), mirroring the paper's model of P concurrent I/O
tasks while keeping dispatch overhead at O(P), not O(pieces).

Thunks run on a shared, lazily created pool — pool threads are reused
across streaming operations, so a periodic checkpointer does not pay
thread startup per checkpoint.  Concurrency per call is bounded by the
number of thunks submitted (one per I/O task), not the pool width.

Determinism boundary: results are returned in submission order and the
first failure (again in submission order) is re-raised, so callers see
serial-equivalent outcomes.  What concurrency *does* reorder is the
sequence of writes hitting the sink — which is why callers fall back to
the serial loop whenever write-sequence-dependent machinery (the
``nth``-write fault injector) is armed; see :func:`faults_armed`.
"""

from __future__ import annotations

import contextvars
import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Sequence

__all__ = ["faults_armed", "run_tasks", "submit_task"]

#: shared-pool width: enough for every plausible P plus a concurrent
#: stream or two; per-call concurrency is bounded by thunk count anyway
_POOL_WIDTH = max(8, (os.cpu_count() or 4) * 2)

_pool: ThreadPoolExecutor | None = None
_pool_lock = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=_POOL_WIDTH, thread_name_prefix="parstream"
            )
        return _pool


def faults_armed(endpoint) -> bool:
    """True when ``endpoint`` (a sink or source) is backed by a PFS
    with a fault injector armed.  Fault plans address the *nth matching
    write*, which is only meaningful over a deterministic write
    sequence — concurrent executors must detect this and run serially."""
    pfs = getattr(endpoint, "pfs", None)
    return pfs is not None and getattr(pfs, "faults", None) is not None


def _in_context(task: Callable[[], object]) -> Callable[[], object]:
    """Bind ``task`` to a copy of the submitting thread's context, so
    workers observe the caller's :mod:`contextvars` scopes (notably the
    ``strict_gather`` strictness flag) instead of whatever context the
    pool thread last ran in.  Each thunk gets its *own* copy — a single
    Context object cannot be entered concurrently."""
    ctx = contextvars.copy_context()
    return lambda: ctx.run(task)


def submit_task(task: Callable[[], object]) -> Future:
    """Submit one thunk to the shared pool and return its Future —
    the fire-and-forget entry point used by background work that should
    ride the same threads as the parstream I/O tasks (e.g. the
    asynchronous L1->L2 checkpoint drain of :mod:`repro.mlck.drain`),
    so a periodic checkpointer never pays thread startup.  The thunk
    runs in a copy of the submitting thread's context."""
    return _shared_pool().submit(_in_context(task))


def run_tasks(tasks: Sequence[Callable[[], object]]) -> List[object]:
    """Run independent thunks concurrently; results come back in
    submission order.  If any thunk raises, the first failure in
    submission order propagates — after every thunk has finished, so no
    write is half-abandoned mid-flight."""
    if not tasks:
        return []
    if len(tasks) == 1:
        return [tasks[0]()]
    futures = [_shared_pool().submit(_in_context(t)) for t in tasks]
    outcomes = []
    for f in futures:
        try:
            outcomes.append((f.result(), None))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            outcomes.append((None, exc))
    for _, exc in outcomes:
        if exc is not None:
            raise exc
    return [value for value, _ in outcomes]
