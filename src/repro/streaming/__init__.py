"""Distribution-independent array-section streaming (paper Section 3.2).

Streaming moves the elements of a distributed-array section in or out of
an application in a canonical linear order (FORTRAN column-major or C
row-major) that depends only on the section — never on the distribution.
That property is what makes DRMS checkpoints restartable on a different
number of tasks.

* :mod:`repro.streaming.partition` — the recursive lo/hi partition of a
  slice into stream-order-contiguous pieces (paper Fig. 5a);
* :mod:`repro.streaming.serial` — one task performs all I/O (works on
  non-seekable channels: sockets, tape);
* :mod:`repro.streaming.parallel` — ``parstream`` (paper Fig. 5b):
  redistribute each piece to a canonical owner, then P tasks write their
  pieces at computed stream offsets in parallel (needs seek).
"""

from repro.streaming.order import stream_order_bytes, section_stream_positions
from repro.streaming.partition import partition, partition_for_target, piece_offsets
from repro.streaming.streams import ByteSink, ByteSource, MemorySink, MemorySource
from repro.streaming.serial import stream_out_serial, stream_in_serial, strict_gather
from repro.streaming.parallel import stream_out_parallel, stream_in_parallel

__all__ = [
    "stream_order_bytes",
    "section_stream_positions",
    "partition",
    "partition_for_target",
    "piece_offsets",
    "ByteSink",
    "ByteSource",
    "MemorySink",
    "MemorySource",
    "stream_out_serial",
    "stream_in_serial",
    "strict_gather",
    "stream_out_parallel",
    "stream_in_parallel",
]
