"""Stream element orderings.

For a section described by slice ``s`` of an array ``A``, the output
stream contains the elements of ``A[s]`` ordered over the *section's own
index mesh*: FORTRAN-style column-major (first axis fastest) or C-style
row-major (last axis fastest).  The paper's key observation: this order
depends only on the section, so the stream is a distribution-independent
representation.
"""

from __future__ import annotations

import numpy as np

from repro.arrays.slices import Slice
from repro.errors import StreamingError

__all__ = ["check_order", "stream_order_bytes", "bytes_to_section", "section_stream_positions"]


def check_order(order: str) -> str:
    """Validate a stream-order flag ('F' column-major or 'C' row-major)."""
    if order not in ("F", "C"):
        raise StreamingError(f"stream order must be 'F' or 'C', got {order!r}")
    return order


def stream_order_bytes(values: np.ndarray, order: str = "F") -> bytes:
    """Serialize a section's values (shaped like the section) in stream
    order."""
    check_order(order)
    return np.ascontiguousarray(values).tobytes(order=order)


def bytes_to_section(data: bytes, shape, dtype, order: str = "F") -> np.ndarray:
    """Inverse of :func:`stream_order_bytes`."""
    check_order(order)
    flat = np.frombuffer(data, dtype=dtype)
    expect = int(np.prod(shape)) if len(shape) else 1
    if flat.size != expect:
        raise StreamingError(
            f"stream has {flat.size} elements for section shape {tuple(shape)}"
        )
    return flat.reshape(shape, order=order)


def section_stream_positions(section: Slice, sub: Slice, order: str = "F") -> np.ndarray:
    """Stream positions (0-based, within ``section``'s stream) of the
    elements of ``sub`` (a subset of ``section``), in ``sub``'s own
    stream order.  Used by tests to verify piece offsets and by serial
    streaming of scattered owners."""
    check_order(order)
    if not sub.issubset(section):
        raise StreamingError(f"{sub!r} is not a subset of {section!r}")
    # an empty sub (which may carry non-empty ranges on other axes that
    # are not per-axis subsets of ``section``) yields an empty vector
    return sub.flat_positions_within(
        section, enum_order=order, address_order=order
    )
