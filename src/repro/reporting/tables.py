"""Minimal ASCII table / bar-chart rendering for bench output."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Table", "bar_chart"]


class Table:
    """Fixed-column ASCII table."""

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        """Append one row (cell count must match the columns)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        """The table as aligned ASCII text."""
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        head = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        body = "\n".join(
            " | ".join(c.rjust(w) for c, w in zip(row, widths)) for row in self.rows
        )
        out = []
        if self.title:
            out.append(self.title)
            out.append("=" * len(self.title))
        out += [head, sep]
        if body:
            out.append(body)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def bar_chart(
    series: Dict[str, Dict[str, float]],
    width: int = 50,
    title: str = "",
    unit: str = "s",
) -> str:
    """Horizontal stacked bars: ``{bar_label: {component: value}}``.
    The reproduction's stand-in for Figure 7's stacked columns."""
    totals = {k: sum(v.values()) for k, v in series.items()}
    peak = max(totals.values()) if totals else 1.0
    glyphs = "#=+o*%"
    comp_names: List[str] = []
    for v in series.values():
        for c in v:
            if c not in comp_names:
                comp_names.append(c)
    lines = []
    if title:
        lines += [title, "=" * len(title)]
    label_w = max((len(k) for k in series), default=0)
    for label, comps in series.items():
        bar = ""
        for c in comp_names:
            val = comps.get(c, 0.0)
            n = int(round(width * val / peak)) if peak else 0
            bar += glyphs[comp_names.index(c) % len(glyphs)] * n
        lines.append(f"{label.ljust(label_w)} |{bar}  {totals[label]:.1f}{unit}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={c}" for i, c in enumerate(comp_names)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
