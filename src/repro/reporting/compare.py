"""Paper-vs-measured comparison records for EXPERIMENTS.md and benches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Comparison", "fmt_mb", "fmt_s"]


def fmt_mb(nbytes: float) -> str:
    """Format bytes as decimal megabytes."""
    return f"{nbytes / 1e6:.1f}"


def fmt_s(seconds: float) -> str:
    """Format seconds with one decimal."""
    return f"{seconds:.1f}"


@dataclass
class Comparison:
    """One reproduced quantity against its paper value."""

    name: str
    paper: float
    measured: float
    unit: str = ""
    reconstructed: bool = False

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper

    def within(self, rel_tol: float) -> bool:
        return abs(self.ratio - 1.0) <= rel_tol

    def row(self) -> tuple:
        """The comparison as a printable table row (flags reconstructions)."""
        flag = " (reconstructed)" if self.reconstructed else ""
        return (
            self.name + flag,
            f"{self.paper:g}{self.unit}",
            f"{self.measured:.1f}{self.unit}",
            f"{self.ratio:.2f}x",
        )
