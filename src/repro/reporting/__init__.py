"""ASCII reporting: tables and paper-vs-measured comparisons for the
benchmark harness."""

from repro.reporting.tables import Table, bar_chart
from repro.reporting.compare import Comparison, fmt_mb, fmt_s

__all__ = ["Table", "bar_chart", "Comparison", "fmt_mb", "fmt_s"]
