"""Per-node flight recorder: the always-on "black box" of the cluster.

A failure in this system used to be observable only after the fact, by
grepping span dumps — and only when a full :class:`~repro.obs.spans.Tracer`
happened to be installed.  The flight recorder closes that gap: every
node carries a **bounded ring buffer** of structured events (checkpoint
phase transitions, SOP crossings, drain state changes, replica
placements, PFS faults, stream ops with byte counts) that is cheap
enough to leave on even when tracing is off.  When a node is killed —
by a :class:`~repro.infra.failure.FailurePlan`, an
:meth:`~repro.mlck.store.L1Store.drop_node`, or the RC's failure
protocol — the recorder emits a **black-box dump**: a JSON-able
snapshot of the node's last ``capacity`` events, exactly what a crash
investigator wants to know about what the node was doing when it died.

Cost model: the default is the shared :data:`NULL_FLIGHT`, whose
``record`` is a no-op — instrumented hot paths pay one module-level
read and one no-op call.  An active :class:`FlightRecorder` appends one
tuple to a bounded ``deque`` per event; there is no hashing, no I/O,
and no per-event allocation beyond the tuple and its detail dict, so
recording stays well under the 5% overhead budget the
``bench_obs_overhead`` benchmark enforces.

Scope a recorder on exactly like a tracer::

    from repro.obs import FlightRecorder, use_flight

    with use_flight(FlightRecorder()) as fr:
        cluster.run_with_recovery(...)
    for box in fr.blackboxes:
        print(box["node"], box["reason"], len(box["events"]))

Event ring format and the dump schema are specified in DESIGN.md §13.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "FlightEvent",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "GLOBAL_NODE",
    "get_flight",
    "set_flight",
    "use_flight",
]

#: ring slot for events not tied to any one node (scheduler decisions,
#: whole-fleet transitions)
GLOBAL_NODE = -1

#: black-box dump schema version (DESIGN.md §13)
BLACKBOX_SCHEMA = "repro.flight/1"


@dataclass(frozen=True)
class FlightEvent:
    """One recorded ring entry, materialized for consumers.

    The ring itself stores bare tuples (``seq, time, kind, detail``) —
    this dataclass exists for query results and dump loading, not for
    the hot recording path.
    """

    seq: int
    time: float
    kind: str
    node: int
    detail: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-able dump row (DESIGN.md §13 event schema)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "detail": dict(self.detail),
        }


class FlightRecorder:
    """Bounded per-node rings of structured events + black-box dumps.

    ``capacity`` bounds each node's ring; older events fall off the
    back (the ``dropped`` count in a dump says how many).  ``record``
    is safe under the SPMD task threads: ``deque.append`` is atomic and
    the sequence counter is an ``itertools.count``.
    """

    enabled = True

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"flight ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rings: Dict[int, deque] = {}
        self._recorded: Dict[int, int] = {}
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        #: emitted black-box dumps, in emission order
        self.blackboxes: List[Dict[str, Any]] = []
        self._dumped: set = set()

    # -- recording (the hot path) -------------------------------------------

    def record(
        self, kind: str, node: int = GLOBAL_NODE, time: float = 0.0, **detail: Any
    ) -> None:
        """Append one event to ``node``'s ring (the global ring by
        default).  Near-zero cost: one tuple, one deque append."""
        ring = self._rings.get(node)
        if ring is None:
            with self._lock:
                ring = self._rings.setdefault(node, deque(maxlen=self.capacity))
        ring.append((next(self._seq), time, kind, detail))
        self._recorded[node] = self._recorded.get(node, 0) + 1

    # -- queries -------------------------------------------------------------

    def nodes(self) -> List[int]:
        """Node ids with at least one recorded event (global ring
        included as :data:`GLOBAL_NODE`)."""
        return sorted(self._rings)

    def ring(self, node: int = GLOBAL_NODE) -> List[FlightEvent]:
        """The current contents of one node's ring, oldest first."""
        return [
            FlightEvent(seq=s, time=t, kind=k, node=node, detail=dict(d))
            for s, t, k, d in list(self._rings.get(node, ()))
        ]

    def events(self) -> List[FlightEvent]:
        """Every resident event across all rings, in global sequence
        order (the interleaved view a forensic timeline wants)."""
        out: List[FlightEvent] = []
        for node in self.nodes():
            out.extend(self.ring(node))
        out.sort(key=lambda e: e.seq)
        return out

    def recorded(self, node: int = GLOBAL_NODE) -> int:
        """Total events ever recorded for ``node`` (dropped included)."""
        return self._recorded.get(node, 0)

    # -- black-box dumps -----------------------------------------------------

    def blackbox(
        self, node: int, reason: str = "", time: float = 0.0
    ) -> Dict[str, Any]:
        """Snapshot ``node``'s ring as a black-box dump (DESIGN.md §13
        schema), register it on :attr:`blackboxes`, and return it.

        The dump interleaves the node's own ring with the global ring —
        a dead node's story usually ends in scheduler/RC decisions that
        were recorded globally.
        """
        own = self.ring(node)
        context = self.ring(GLOBAL_NODE) if node != GLOBAL_NODE else []
        merged = sorted(own + context, key=lambda e: e.seq)
        box = {
            "schema": BLACKBOX_SCHEMA,
            "node": node,
            "reason": reason,
            "time": time,
            "capacity": self.capacity,
            "recorded": self.recorded(node),
            "dropped": max(0, self.recorded(node) - len(own)),
            "events": [e.to_dict() for e in merged],
        }
        with self._lock:
            self.blackboxes.append(box)
            self._dumped.add(node)
        return box

    def auto_blackbox(
        self, node: int, reason: str = "", time: float = 0.0
    ) -> Optional[Dict[str, Any]]:
        """Emit a black-box dump for ``node`` unless one was already
        emitted this incident (several layers observe the same death:
        the RC protocol, the L1 store drop, the cluster scenario — the
        first observer wins).  Returns the dump, or None if deduped."""
        with self._lock:
            if node in self._dumped:
                return None
        return self.blackbox(node, reason=reason, time=time)

    def reset_incident(self) -> None:
        """Forget which nodes already dumped (start a new incident)."""
        with self._lock:
            self._dumped.clear()

    # -- export --------------------------------------------------------------

    def publish_metrics(self) -> None:
        """Feed the recorder's volume counters into the active metrics
        registry (``flight.recorded`` / ``flight.blackboxes``) — called
        at export/incident time, never on the hot recording path."""
        from repro.obs.spans import get_tracer

        m = get_tracer().metrics
        m.gauge("flight.recorded").set(sum(self._recorded.values()))
        m.gauge("flight.blackboxes").set(len(self.blackboxes))

    def to_dict(self) -> Dict[str, Any]:
        """The whole recorder state, JSON-able: rings + dumps."""
        return {
            "schema": BLACKBOX_SCHEMA,
            "capacity": self.capacity,
            "rings": {
                str(node): [e.to_dict() for e in self.ring(node)]
                for node in self.nodes()
            },
            "blackboxes": list(self.blackboxes),
        }

    def write_blackboxes(self, out_dir) -> List[pathlib.Path]:
        """Write each emitted dump as ``blackbox_node<N>.json`` under
        ``out_dir``; returns the paths."""
        out = pathlib.Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = []
        for box in self.blackboxes:
            path = out / f"blackbox_node{box['node']}.json"
            path.write_text(json.dumps(box, indent=1, default=repr))
            paths.append(path)
        return paths

    def __repr__(self) -> str:
        return (
            f"FlightRecorder({len(self._rings)} rings, "
            f"{len(self.blackboxes)} blackboxes)"
        )


class NullFlightRecorder(FlightRecorder):
    """The default recorder: records nothing, costs (almost) nothing."""

    enabled = False

    def __init__(self):
        self.capacity = 0
        self.blackboxes = []

    def record(self, kind, node=GLOBAL_NODE, time=0.0, **detail) -> None:
        pass

    def nodes(self) -> List[int]:
        return []

    def ring(self, node: int = GLOBAL_NODE) -> List[FlightEvent]:
        return []

    def events(self) -> List[FlightEvent]:
        return []

    def recorded(self, node: int = GLOBAL_NODE) -> int:
        return 0

    def blackbox(self, node, reason="", time=0.0) -> Dict[str, Any]:
        return {
            "schema": BLACKBOX_SCHEMA,
            "node": node,
            "reason": reason,
            "time": time,
            "capacity": 0,
            "recorded": 0,
            "dropped": 0,
            "events": [],
        }

    def auto_blackbox(self, node, reason="", time=0.0) -> None:
        return None

    def reset_incident(self) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": BLACKBOX_SCHEMA, "capacity": 0, "rings": {}, "blackboxes": []}

    def __repr__(self) -> str:
        return "NullFlightRecorder()"


#: the process-wide default
NULL_FLIGHT = NullFlightRecorder()

_current: FlightRecorder = NULL_FLIGHT


def get_flight() -> FlightRecorder:
    """The active flight recorder (:data:`NULL_FLIGHT` by default)."""
    return _current


def set_flight(recorder: Optional[FlightRecorder]) -> FlightRecorder:
    """Install ``recorder`` as the active flight recorder (None
    restores the null); returns the recorder now active."""
    global _current
    _current = recorder if recorder is not None else NULL_FLIGHT
    return _current


@contextmanager
def use_flight(recorder: FlightRecorder) -> Iterator[FlightRecorder]:
    """Scope a flight recorder: install on entry, restore on exit."""
    previous = _current
    set_flight(recorder)
    try:
        yield recorder
    finally:
        set_flight(previous)
