"""Metrics registry: counters, gauges, and histograms.

One :class:`MetricsRegistry` collects every numeric series the pipeline
produces — bytes moved by the streaming engines, PIOFS operation and
fault counters, phase-duration histograms, daemon event tallies.  The
registry is the single sink the ISSUE calls for: producers that used to
keep private accounting (``StreamStats``, ``CommTracer``) feed the same
names here, so one flat dump carries the whole story.

Instruments are cheap and lock-protected; ``counter()`` / ``gauge()`` /
``histogram()`` get-or-create by name, so producers never coordinate.
:class:`NullMetricsRegistry` is the no-op twin used by the default
:class:`~repro.obs.spans.NullTracer` — instrumented hot paths pay one
attribute lookup and a no-op call when observability is off.

Naming convention (see DESIGN.md §9): dotted lowercase paths,
``<layer>.<operation>.<unit>`` — e.g. ``pfs.write.bytes``,
``checkpoint.drms.segment.seconds``, ``stream.redistribution.bytes``.
Per-file counters append the file name in brackets:
``pfs.write.bytes[ckpt.segment]``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]

#: raw samples kept per histogram; beyond this only the running
#: count/sum/min/max stay exact and percentiles reflect the prefix
_HISTOGRAM_CAPACITY = 65536


class Counter:
    """Monotone accumulator (float-valued: seconds count too)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> float:
        """Add ``amount`` (must be >= 0); returns the new value."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> float:
        """Record the current value; returns it."""
        self.value = float(value)
        return self.value


class Histogram:
    """Value distribution with exact count/sum/min/max and
    percentile summaries over the retained samples."""

    __slots__ = ("name", "values", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.values: List[float] = []
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample (retained up to the sample capacity)."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.values) < _HISTOGRAM_CAPACITY:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the retained samples,
        by nearest-rank on the sorted values.  The extremes are exact:
        ``p=0`` returns the true min and ``p=100`` the true max (tracked
        over *all* observations, beyond the retained-sample capacity).
        An empty histogram returns 0.0 for any ``p`` — never NaN, never
        an exception."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside 0..100")
        if self.count == 0:
            return 0.0
        if p == 0.0:
            return self.min if self.min is not None else 0.0
        if p == 100.0:
            return self.max if self.max is not None else 0.0
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        idx = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max plus p0/p50/p90/p99/p100.

        Well-defined for every histogram state: an empty histogram
        yields ``count=0`` and zeros throughout (no NaN, no raise), and
        ``p0``/``p100`` equal ``min``/``max`` exactly by construction.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p0": self.percentile(0),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p100": self.percentile(100),
        }


class MetricsRegistry:
    """Named instruments, get-or-create, safe under task threads."""

    #: hot paths branch on this to skip optional (e.g. per-file) series
    enabled = True

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """Get or create the counter named ``name``."""
        c = self.counters.get(name)
        if c is None:
            with self._lock:
                c = self.counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge named ``name``."""
        g = self.gauges.get(name)
        if g is None:
            with self._lock:
                g = self.gauges.setdefault(name, Gauge(name))
        return g

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram named ``name``."""
        h = self.histograms.get(name)
        if h is None:
            with self._lock:
                h = self.histograms.setdefault(name, Histogram(name))
        return h

    def to_dict(self) -> Dict[str, Dict]:
        """Structured dump: counters, gauges, histogram summaries."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def flat(self) -> Dict[str, float]:
        """Flat ``name -> number`` dump (the ``BENCH_*.json``-style
        format benchmarks consume): counters and gauges verbatim,
        histograms expanded as ``name.count`` / ``name.mean`` /
        ``name.p50`` et al.  Key order is guaranteed deterministic —
        lexicographic over the full expanded key set, independent of
        instrument creation order — so dumps diff cleanly across runs.
        """
        out: Dict[str, float] = {}
        for n, c in self.counters.items():
            out[n] = c.value
        for n, g in self.gauges.items():
            out[n] = g.value
        for n, h in self.histograms.items():
            for k, v in h.summary().items():
                out[f"{n}.{k}"] = v
        return dict(sorted(out.items()))


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "<null>"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: float = 1.0) -> float:
        return 0.0

    def set(self, value: float) -> float:
        return 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """No-op registry: every lookup returns one shared null instrument."""

    enabled = False

    def __init__(self):  # no dicts, no lock
        pass

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str):
        return _NULL_INSTRUMENT

    def to_dict(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def flat(self) -> Dict[str, float]:
        return {}


#: the shared no-op registry used by the default NullTracer
NULL_METRICS = NullMetricsRegistry()
