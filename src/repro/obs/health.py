"""Fleet health: per-node and fleet-level gauges over the live system.

The ROADMAP's localized-recovery and fleet-scale-study directions both
need to know, at any instant, *how exposed the system is*: which
failure domains still hold valid checkpoint replicas, how deep and how
old the drain backlog is, how far the newest durable generation lags
the newest captured one, and whether the checkpoint cadence is
drifting.  :class:`HealthRegistry` computes those gauges on demand from
the live objects (L1 store, drain controller, RC, JSA, machine) and
stores them in a plain :class:`~repro.obs.metrics.MetricsRegistry`, so
they export through every existing channel — the flat JSON dump, and
the OpenMetrics/Prometheus text exporter
(:func:`~repro.obs.export.openmetrics_text`).

Sampling is *pull-based*: ``sample_*`` methods read the object they are
given and never mutate it.  The JSA, RC, and
:class:`~repro.mlck.drain.DrainController` re-sample automatically at
their interesting moments (job transitions, the failure protocol,
drain completion) when a registry is attached to their ``health``
attribute — :class:`~repro.infra.cluster.DRMSCluster` wires one up for
the whole installation.

Gauge catalog (all names under ``health.``; DESIGN.md §13):

* ``health.nodes.up`` / ``health.nodes.down`` — machine liveness;
* ``health.l1.replicas[<domain>]`` — valid replica copies resident in
  each failure domain (the replica-coverage view);
* ``health.l1.min_live_replicas`` — worst-case surviving copies over
  all pieces of the newest generation (0 means that state is lost);
* ``health.l1.resident_bytes`` — memory-tier footprint;
* ``health.drain.backlog`` / ``health.drain.oldest_age_s`` — queued
  promotions and the age of the oldest still-pending one;
* ``health.durable.lag`` — newest captured generation number minus
  newest durable one;
* ``health.checkpoint.interval_last_s`` / ``interval_mean_s`` /
  ``cadence_drift`` — drift is ``last/mean - 1`` (0 = on cadence);
* ``health.jobs.<state>`` — jobs per lifecycle state;
* ``health.fleet.running`` / ``health.fleet.queued`` — fleet-study
  occupancy (sampled by :mod:`repro.infra.study`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["HealthRegistry"]


class HealthRegistry:
    """On-demand health gauges over the live checkpoint/recovery stack."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- machine / daemons ----------------------------------------------------

    def sample_machine(self, machine) -> None:
        """Node liveness."""
        up = len(machine.up_nodes())
        self.metrics.gauge("health.nodes.up").set(up)
        self.metrics.gauge("health.nodes.down").set(machine.num_nodes - up)

    def sample_rc(self, rc) -> None:
        """RC view: liveness plus pending repairs and busy pools."""
        self.sample_machine(rc.machine)
        self.metrics.gauge("health.nodes.repairing").set(len(rc.repair_done_at))
        self.metrics.gauge("health.pools.active").set(len(rc.pools))

    def sample_jsa(self, jsa) -> None:
        """Jobs per lifecycle state."""
        from repro.infra.jsa import JobState

        counts = {state: 0 for state in JobState}
        for job in jsa.jobs.values():
            counts[job.state] += 1
        for state, n in counts.items():
            self.metrics.gauge(f"health.jobs.{state.value}").set(n)

    # -- the memory tier ------------------------------------------------------

    def sample_store(self, store, clock: float = 0.0) -> None:
        """L1 replica coverage: copies per failure domain, worst-case
        surviving replica depth of the newest generation, footprint,
        and checkpoint cadence derived from capture timestamps."""
        machine = store.machine
        domain_copies: Dict[int, int] = {
            d: 0 for d in range(machine.num_domains)
        }
        newest = store.latest()
        min_live: Optional[int] = None
        if newest is not None:
            gen = store.gen(newest)
            for pieces in (
                [gen.segment_pieces]
                + [e.pieces for e in gen.arrays]
                + gen.task_pieces
            ):
                for piece in pieces:
                    live = 0
                    for node in piece.replicas:
                        if not (0 <= node < machine.num_nodes):
                            continue
                        if not machine.node(node).up:
                            continue
                        live += 1
                        domain_copies[machine.domain_of(node)] += 1
                    min_live = live if min_live is None else min(min_live, live)
        for domain, copies in sorted(domain_copies.items()):
            self.metrics.gauge(f"health.l1.replicas[{domain}]").set(copies)
        self.metrics.gauge("health.l1.min_live_replicas").set(
            min_live if min_live is not None else 0
        )
        self.metrics.gauge("health.l1.generations").set(len(store.generations()))
        self.metrics.gauge("health.l1.resident_bytes").set(store.resident_bytes())
        self._sample_cadence(store, clock)

    def _sample_cadence(self, store, clock: float) -> None:
        captures = [
            store.gen(p).captured_at
            for p in store.generations()
            if store.gen(p).captured_at is not None
        ]
        captures.sort()
        if len(captures) < 2:
            self.metrics.gauge("health.checkpoint.cadence_drift").set(0.0)
            return
        intervals = [b - a for a, b in zip(captures, captures[1:])]
        mean = sum(intervals) / len(intervals)
        last = max(intervals[-1], max(0.0, clock - captures[-1]))
        self.metrics.gauge("health.checkpoint.interval_mean_s").set(mean)
        self.metrics.gauge("health.checkpoint.interval_last_s").set(last)
        self.metrics.gauge("health.checkpoint.cadence_drift").set(
            last / mean - 1.0 if mean > 0 else 0.0
        )

    def sample_drainer(self, drainer, clock: float = 0.0) -> None:
        """Drain backlog depth and age, and durable-generation lag."""
        self.metrics.gauge("health.drain.backlog").set(drainer.pending)
        ages = [
            clock - t for t in drainer.scheduled_at.values() if clock >= t
        ]
        self.metrics.gauge("health.drain.oldest_age_s").set(
            max(ages) if ages else 0.0
        )
        store = drainer.store
        from repro.mlck.drain import DrainState

        newest_num = durable_num = 0
        for prefix in store.generations():
            num = _gen_number(prefix)
            newest_num = max(newest_num, num)
            if store.gen(prefix).drain_state == DrainState.DURABLE:
                durable_num = max(durable_num, num)
        self.metrics.gauge("health.durable.lag").set(
            max(0, newest_num - durable_num)
        )

    def sample_mlck(self, checkpointer, clock: float = 0.0) -> None:
        """One multi-level checkpointer: store + drainer together."""
        self.sample_store(checkpointer.store, clock=clock)
        self.sample_drainer(checkpointer.drainer, clock=clock)

    # -- fleet study ----------------------------------------------------------

    def sample_fleet(
        self,
        running: int,
        queued: int,
        utilization: float,
        down: Optional[int] = None,
        lost_work: Optional[float] = None,
    ) -> None:
        """Occupancy snapshot from a fleet/scheduling simulation; the
        fleet study additionally reports dark nodes and cumulative
        failure-destroyed work."""
        self.metrics.gauge("health.fleet.running").set(running)
        self.metrics.gauge("health.fleet.queued").set(queued)
        self.metrics.gauge("health.fleet.utilization").set(utilization)
        if down is not None:
            self.metrics.gauge("health.fleet.down_nodes").set(down)
        if lost_work is not None:
            self.metrics.gauge("health.fleet.lost_work_node_s").set(lost_work)

    # -- convenience ----------------------------------------------------------

    def sample_cluster(self, cluster, apps=()) -> None:
        """Sample a whole :class:`~repro.infra.cluster.DRMSCluster` —
        RC, JSA, and the mlck pipelines of the given applications."""
        self.sample_rc(cluster.rc)
        self.sample_jsa(cluster.jsa)
        clock = cluster.rc.clock
        for app in apps:
            for ck in getattr(app, "_mlck", {}).values():
                self.sample_mlck(ck, clock=clock)

    def snapshot(self) -> Dict[str, float]:
        """All health gauges as a flat, deterministically ordered dict."""
        return {
            name: gauge.value
            for name, gauge in sorted(self.metrics.gauges.items())
            if name.startswith("health.")
        }

    def report(self) -> str:
        """Human-readable one-gauge-per-line health summary."""
        lines = ["fleet health"]
        for name, value in self.snapshot().items():
            lines.append(f"  {name:<40} {value:g}")
        return "\n".join(lines)


def _gen_number(prefix: str) -> int:
    from repro.checkpoint.rotation import _GEN_RE

    m = _GEN_RE.match(prefix)
    return int(m.group("gen")) if m is not None else 0
