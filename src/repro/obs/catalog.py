"""The metrics catalog: every published metric name belongs to a
documented family.

DESIGN.md §9 fixes the naming convention (dotted lowercase paths,
``<layer>.<operation>.<unit>``, per-entity series in brackets); this
module fixes the *families* — the set of name shapes the codebase is
allowed to publish.  A static test (``tests/obs/test_catalog.py``)
extracts every ``counter("...")`` / ``gauge("...")`` /
``histogram("...")`` literal under ``src/repro/`` and asserts it
matches one family, so a typo'd metric name (``mlck.drian.pending``)
fails CI instead of silently forking a new series.

Families are full-match regular expressions over the *published* name
(before :meth:`~repro.obs.metrics.MetricsRegistry.flat` expands
histogram summaries).  Dynamic segments that instrumentation fills at
runtime (the event kind, the PFS operation, the failure domain) are
constrained to the character class the convention allows.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

__all__ = ["METRIC_FAMILIES", "match_family"]

#: one dynamic dotted segment (event kinds, job states, tiers, ...)
_SEG = r"[a-z0-9_]+"
#: bracketed per-entity suffix (file names, domains; dots allowed)
_ENT = r"\[[A-Za-z0-9_.{}\- ]+\]"

#: (family, full-match regex, one-line description)
METRIC_FAMILIES: List[Tuple[str, str, str]] = [
    (
        "breakdown",
        rf"(checkpoint|restart)\.(count|(segment|arrays|other|total)\.(seconds|bytes))",
        "per-operation phase breakdown totals published by the engines",
    ),
    (
        "comm",
        r"comm\.(bytes|messages)",
        "communication-tracer totals (runtime.trace)",
    ),
    (
        "events",
        rf"events\.{_SEG}",
        "bridged EventLog tallies, one counter per event kind (obs.bridge)",
    ),
    (
        "flight",
        r"flight\.(recorded|blackboxes)",
        "flight-recorder volume counters (obs.flight instrumentation)",
    ),
    (
        "health",
        rf"health\.(nodes|pools|jobs|l1|drain|durable|checkpoint|fleet)\.{_SEG}({_ENT})?",
        "fleet health gauges computed by obs.health.HealthRegistry",
    ),
    ("jsa", r"jsa\.recoveries", "Job Scheduler recovery tally"),
    ("rc", r"rc\.failures", "Resource Coordinator failure-protocol tally"),
    (
        "mlck",
        rf"mlck\.(l1|l2|drain|recover|restore|localized)\.{_SEG}(\.{_SEG})?",
        "multi-level checkpoint store: captures, drains, tier hits, "
        "localized-recovery scope/re-replication accounting",
    ),
    (
        "pfs",
        rf"pfs\.(create|unlink|rename|write|read|phase|faults)\.{_SEG}(\.{_SEG})?({_ENT})?",
        "parallel-file-system operation/phase/fault accounting",
    ),
    (
        "policy",
        rf"policy\.(evaluations|skipped|fired\.{_SEG}|throttled\.{_SEG}|adaptive\.{_SEG})",
        "checkpoint-cadence engine tallies: per-SOP evaluations, rule "
        "firings/vetoes by kind, and the adaptive interval in force",
    ),
    (
        "fleet",
        rf"fleet\.{_SEG}(\.{_SEG})?",
        "fleet-simulation outcome totals (infra.fleet): completions, "
        "injected failures, lost work, recovery latency",
    ),
    (
        "workflow",
        rf"workflow\.{_SEG}(\.{_SEG})?",
        "coupled-workflow coordination: exchange/steering tallies, "
        "coupling wire bytes, committed/rejected/fallback line counts, "
        "per-line ensemble checkpoint seconds, and member restore tiers",
    ),
    (
        "plancache",
        rf"plancache\.(hit|miss|eviction|invalidation|saved_seconds)({_ENT})?",
        "plan-cache hit/miss/eviction accounting",
    ),
    (
        "recover",
        r"recover\.(verified|rejected|fallback)",
        "restart-state walk outcomes (checkpoint.recover, mlck.recovery)",
    ),
    (
        "stream",
        r"stream\.(out|in|redistribution)\.(bytes|pieces)",
        "streaming-engine byte/piece totals (StreamStats.publish)",
    ),
    (
        "validate",
        r"validate\.(count|failed|files|bytes_hashed)",
        "checkpoint integrity validation tallies",
    ),
]

_COMPILED = [
    (family, re.compile(pattern), doc) for family, pattern, doc in METRIC_FAMILIES
]


def match_family(name: str) -> Optional[str]:
    """The family that documents ``name``, or None if the name is
    outside every documented family (a typo, or a new family that must
    be added here with a description)."""
    for family, regex, _ in _COMPILED:
        if regex.fullmatch(name):
            return family
    return None
