"""Human-readable phase reports from a span tree.

:func:`breakdown_report` reproduces the paper's Table 6-style cost
accounting from live spans instead of hand-threaded breakdown objects:
for every top-level ``checkpoint`` / ``restart`` span it renders one
table of the operation's phases — simulated seconds, bytes, achieved
MB/s, and the share of the operation total — and the phase rows sum to
the root span by construction (the engine advances the trace clock only
inside phase spans).  When the plan cache fed the traced run, a
footer attributes the planning wall-time it saved
(``plancache.saved_seconds`` et al. from the metrics registry).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.spans import Span, Tracer
from repro.reporting.tables import Table

__all__ = [
    "phase_rows",
    "breakdown_report",
    "op_summary",
    "plancache_summary",
    "mlck_summary",
]

_MB = 1e6  # the paper reports decimal MB/s

#: root-span names the report treats as operations
_OP_NAMES = ("checkpoint", "restart", "recover")


def phase_rows(tracer: Tracer, root: Span) -> List[Dict]:
    """One dict per direct child phase of ``root``: name, simulated
    seconds, bytes (from the ``nbytes`` attribute), rate, share."""
    total = root.sim_seconds
    rows = []
    for child in tracer.children(root):
        seconds = child.sim_seconds
        nbytes = int(child.attrs.get("nbytes", 0))
        rows.append(
            {
                "phase": child.name,
                "seconds": seconds,
                "nbytes": nbytes,
                "rate_mbps": nbytes / _MB / seconds if seconds else 0.0,
                "share": seconds / total if total else 0.0,
            }
        )
    return rows


def op_summary(tracer: Tracer, root: Span) -> Dict:
    """Totals for one operation root: seconds, bytes, phase sum —
    ``phase_seconds`` equals ``seconds`` by construction (the
    integration tests assert it)."""
    rows = phase_rows(tracer, root)
    return {
        "name": root.name,
        "kind": root.attrs.get("kind"),
        "prefix": root.attrs.get("prefix"),
        "ntasks": root.attrs.get("ntasks"),
        "seconds": root.sim_seconds,
        "phase_seconds": sum(r["seconds"] for r in rows),
        "nbytes": sum(r["nbytes"] for r in rows),
        "phases": rows,
    }


def breakdown_report(
    tracer: Tracer, ops: Sequence[str] = _OP_NAMES
) -> str:
    """Render every top-level operation span named in ``ops`` as a
    Table 6-style phase breakdown; empty string when none recorded."""
    blocks = []
    for root in tracer.roots():
        if root.name not in ops or not root.done:
            continue
        kind = root.attrs.get("kind", "?")
        title = (
            f"{root.name} [{kind}] prefix={root.attrs.get('prefix', '?')} "
            f"ntasks={root.attrs.get('ntasks', '?')}"
        )
        t = Table(["phase", "seconds", "MB", "MB/s", "% of op"], title=title)
        for row in phase_rows(tracer, root):
            t.add_row(
                row["phase"],
                row["seconds"],
                row["nbytes"] / _MB,
                row["rate_mbps"],
                f"{100 * row['share']:.0f}%",
            )
        summary = op_summary(tracer, root)
        t.add_row(
            "TOTAL",
            summary["seconds"],
            summary["nbytes"] / _MB,
            summary["nbytes"] / _MB / summary["seconds"]
            if summary["seconds"]
            else 0.0,
            "100%",
        )
        blocks.append(t.render())
    for footer in (plancache_summary(tracer), mlck_summary(tracer)):
        if footer and blocks:
            blocks.append(footer)
    return "\n\n".join(blocks)


def plancache_summary(tracer: Tracer) -> str:
    """One line attributing what plan memoization bought during the
    traced run, from the ``plancache.*`` counters; empty string when the
    cache never saw a lookup."""
    flat = tracer.metrics.flat()
    hits = flat.get("plancache.hit", 0.0)
    misses = flat.get("plancache.miss", 0.0)
    if not hits and not misses:
        return ""
    saved = flat.get("plancache.saved_seconds", 0.0)
    total = hits + misses
    return (
        f"plan cache: {int(hits)}/{int(total)} lookups hit "
        f"({100.0 * hits / total:.0f}%), ~{saved:.4f}s of planning avoided"
    )


def mlck_summary(tracer: Tracer) -> str:
    """Per-tier recovery summary from the ``mlck.*`` counters: how many
    restarts each tier served and the mean restore time per tier
    (``restart.mlck-l1.*`` vs ``restart.drms.*`` series); empty string
    when the multi-level store never served a recovery walk."""
    flat = tracer.metrics.flat()
    l1 = flat.get("mlck.recover.l1", 0.0)
    l2 = flat.get("mlck.recover.l2", 0.0)
    if not l1 and not l2:
        return ""
    parts = []
    for tier, hits, series in (
        ("l1", l1, "restart.mlck-l1"),
        ("l2", l2, "restart.drms"),
    ):
        count = flat.get(f"{series}.count", 0.0)
        secs = flat.get(f"{series}.total.seconds", 0.0)
        mean = f", mean restore {secs / count:.4f}s" if count else ""
        parts.append(f"{tier} served {int(hits)}{mean}")
    fallbacks = flat.get("mlck.l2.fallbacks", 0.0)
    if fallbacks:
        parts.append(f"{int(fallbacks)} fell back to the PFS after L1 loss")
    return "multi-level recovery: " + "; ".join(parts)
