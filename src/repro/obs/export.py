"""Exporters: Chrome trace-event JSON and flat metrics dumps.

:func:`chrome_trace` renders a tracer's spans and marks in the Chrome
trace-event format — drop the file onto ``about:tracing`` or
https://ui.perfetto.dev and the checkpoint/restart phase hierarchy shows
up as nested slices on the simulated timeline.  Durations are simulated
seconds (the paper's currency), exported in microseconds as the format
requires; each slice's ``args`` carries the span attributes plus the
wall-clock seconds the phase actually took.

:func:`metrics_dump` / :func:`write_metrics` emit the registry as flat
``name -> number`` JSON (the ``BENCH_*.json`` shape the benchmark
harness consumes).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dump",
    "write_metrics",
]

_US = 1e6  # trace-event timestamps are microseconds


def _category(name: str) -> str:
    """Slice category from the span/mark name's first dotted component."""
    head = name.split(".", 1)[0].split(":", 1)[0].split("[", 1)[0]
    return head or "span"


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict:
    """The tracer's record as a Chrome trace-event object.

    Complete ``X`` (duration) events for finished spans, ``i`` (instant)
    events for marks, plus process/thread-name metadata.  Open spans are
    skipped — the export is a snapshot of completed work.
    """
    events: List[Dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # stable small thread ids, in order of first appearance
    tids: Dict[int, int] = {}

    def tid_of(ident: int) -> int:
        if ident not in tids:
            tids[ident] = len(tids)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tids[ident],
                    "args": {"name": f"task-thread-{tids[ident]}"},
                }
            )
        return tids[ident]

    for span in tracer.spans:
        if not span.done:
            continue
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        args["wall_seconds"] = span.wall_seconds
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.sim_start * _US,
                "dur": span.sim_seconds * _US,
                "pid": 0,
                "tid": tid_of(span.thread),
                "args": args,
            }
        )
    for mark in tracer.marks:
        events.append(
            {
                "name": mark.name,
                "cat": _category(mark.name),
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": mark.sim_time * _US,
                "pid": 0,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in mark.attrs.items()},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer: Tracer, process_name: str = "repro") -> pathlib.Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, process_name), indent=1))
    return path


def metrics_dump(metrics: MetricsRegistry) -> Dict[str, float]:
    """Flat ``name -> number`` dump of the registry."""
    return metrics.flat()


def write_metrics(path, metrics: MetricsRegistry) -> pathlib.Path:
    """Write the flat metrics dump as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_dump(metrics), indent=1, sort_keys=True))
    return path
