"""Exporters: Chrome trace-event JSON, flat metrics, OpenMetrics text.

:func:`chrome_trace` renders a tracer's spans and marks in the Chrome
trace-event format — drop the file onto ``about:tracing`` or
https://ui.perfetto.dev and the checkpoint/restart phase hierarchy shows
up as nested slices on the simulated timeline.  Durations are simulated
seconds (the paper's currency), exported in microseconds as the format
requires; each slice's ``args`` carries the span attributes plus the
wall-clock seconds the phase actually took.

:func:`metrics_dump` / :func:`write_metrics` emit the registry as flat
``name -> number`` JSON (the ``BENCH_*.json`` shape the benchmark
harness consumes).

:func:`openmetrics_text` / :func:`write_openmetrics` render the same
registry in the OpenMetrics (Prometheus exposition) text format, so
the fleet-health gauges of :mod:`repro.obs.health` — and every other
series — can be scraped or diffed with standard tooling.  Dotted names
sanitize to underscores; the bracketed per-entity convention
(``pfs.write.bytes[ckpt.segment]``, DESIGN.md §9) becomes an
``entity`` label; histograms export as summaries with exact
``quantile="0"``/``"1"`` extremes.  Output ordering is deterministic.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dump",
    "write_metrics",
    "openmetrics_text",
    "write_openmetrics",
]

_US = 1e6  # trace-event timestamps are microseconds


def _category(name: str) -> str:
    """Slice category from the span/mark name's first dotted component."""
    head = name.split(".", 1)[0].split(":", 1)[0].split("[", 1)[0]
    return head or "span"


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict:
    """The tracer's record as a Chrome trace-event object.

    Complete ``X`` (duration) events for finished spans, ``i`` (instant)
    events for marks, plus process/thread-name metadata.  Open spans are
    skipped — the export is a snapshot of completed work.
    """
    events: List[Dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    # stable small thread ids, in order of first appearance
    tids: Dict[int, int] = {}

    def tid_of(ident: int) -> int:
        if ident not in tids:
            tids[ident] = len(tids)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tids[ident],
                    "args": {"name": f"task-thread-{tids[ident]}"},
                }
            )
        return tids[ident]

    for span in tracer.spans:
        if not span.done:
            continue
        args = {k: _jsonable(v) for k, v in span.attrs.items()}
        args["wall_seconds"] = span.wall_seconds
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.sim_start * _US,
                "dur": span.sim_seconds * _US,
                "pid": 0,
                "tid": tid_of(span.thread),
                "args": args,
            }
        )
    for mark in tracer.marks:
        events.append(
            {
                "name": mark.name,
                "cat": _category(mark.name),
                "ph": "i",
                "s": "p",  # process-scoped instant
                "ts": mark.sim_time * _US,
                "pid": 0,
                "tid": 0,
                "args": {k: _jsonable(v) for k, v in mark.attrs.items()},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path, tracer: Tracer, process_name: str = "repro") -> pathlib.Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, process_name), indent=1))
    return path


def metrics_dump(metrics: MetricsRegistry) -> Dict[str, float]:
    """Flat ``name -> number`` dump of the registry."""
    return metrics.flat()


def write_metrics(path, metrics: MetricsRegistry) -> pathlib.Path:
    """Write the flat metrics dump as JSON; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(metrics_dump(metrics), indent=1, sort_keys=True))
    return path


# -- OpenMetrics / Prometheus text format -------------------------------------

_OM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: histogram summary quantiles exported, in OpenMetrics label form
_OM_QUANTILES = [("0", 0.0), ("0.5", 50.0), ("0.9", 90.0), ("0.99", 99.0), ("1", 100.0)]


def _om_split(name: str) -> Tuple[str, Optional[str]]:
    """Registry name -> (sanitized OpenMetrics name, entity label value).

    ``pfs.write.bytes[ckpt.segment]`` -> (``pfs_write_bytes``,
    ``ckpt.segment``); names without a bracket suffix get no label.
    """
    entity: Optional[str] = None
    base = name
    if name.endswith("]") and "[" in name:
        base, _, rest = name.partition("[")
        entity = rest[:-1]
    om = _OM_INVALID.sub("_", base)
    if not om or om[0].isdigit():
        om = "_" + om
    return om, entity


def _om_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _om_labels(*pairs: Tuple[str, Optional[str]]) -> str:
    parts = [
        f'{key}="{_om_escape(value)}"' for key, value in pairs if value is not None
    ]
    return "{" + ",".join(parts) + "}" if parts else ""


def _om_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def openmetrics_text(metrics: MetricsRegistry) -> str:
    """The registry in OpenMetrics text format, deterministically ordered.

    Counters export with the mandated ``_total`` sample suffix,
    gauges verbatim, histograms as summaries (``quantile`` series plus
    ``_count``/``_sum``).  The bracketed per-entity convention becomes
    an ``entity`` label so all files/domains of one series share a
    metric family.  The exposition ends with the ``# EOF`` terminator
    the OpenMetrics spec requires.
    """
    families: Dict[str, Dict] = {}

    def family(om: str, kind: str, doc_name: str) -> Dict:
        fam = families.setdefault(
            om, {"kind": kind, "source": doc_name, "samples": []}
        )
        return fam

    for name, counter in metrics.counters.items():
        om, entity = _om_split(name)
        fam = family(om, "counter", name)
        fam["samples"].append(
            (entity or "", f"{om}_total{_om_labels(('entity', entity))} "
             f"{_om_value(counter.value)}")
        )
    for name, gauge in metrics.gauges.items():
        om, entity = _om_split(name)
        fam = family(om, "gauge", name)
        fam["samples"].append(
            (entity or "", f"{om}{_om_labels(('entity', entity))} "
             f"{_om_value(gauge.value)}")
        )
    for name, hist in metrics.histograms.items():
        om, entity = _om_split(name)
        fam = family(om, "summary", name)
        for q_label, p in _OM_QUANTILES:
            fam["samples"].append(
                (entity or "",
                 f"{om}{_om_labels(('entity', entity), ('quantile', q_label))} "
                 f"{_om_value(hist.percentile(p))}")
            )
        fam["samples"].append(
            (entity or "", f"{om}_count{_om_labels(('entity', entity))} "
             f"{_om_value(hist.count)}")
        )
        fam["samples"].append(
            (entity or "", f"{om}_sum{_om_labels(('entity', entity))} "
             f"{_om_value(hist.total)}")
        )

    lines: List[str] = []
    for om in sorted(families):
        fam = families[om]
        lines.append(f"# TYPE {om} {fam['kind']}")
        seen = set()
        for _, line in sorted(fam["samples"]):
            if line not in seen:  # identical no-label dup guard
                seen.add(line)
                lines.append(line)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path, metrics: MetricsRegistry) -> pathlib.Path:
    """Serialize :func:`openmetrics_text` to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(openmetrics_text(metrics))
    return path
