"""Hierarchical spans over the simulated and wall clocks.

A :class:`Span` covers one phase of work — a checkpoint, its segment
write, one array's parstream, a single stream piece — and records both
timelines: *simulated* seconds (the calibrated PIOFS/machine model that
the paper's tables are denominated in) and *wall* seconds (what the
Python process actually spent).  Spans nest: the tracer keeps a
per-thread stack, so a ``parstream`` span opened inside a ``checkpoint``
span becomes its child and the Chrome-trace export renders the
hierarchy.

The simulated timeline is a cursor (:attr:`Tracer.sim_now`) that
instrumented code advances explicitly — e.g. the checkpoint engine calls
:meth:`Tracer.advance` with each solved I/O-phase duration — so sibling
spans tile the timeline and a parent's simulated duration is exactly the
sum of the advances made inside it.  :meth:`Tracer.sync` merges the
cursor forward to an external clock (the RC's cluster clock), letting
daemon events and application phases share one timeline.

:class:`NullTracer` is the module default: ``span()`` hands back a
shared no-op context manager and its metrics registry is the shared
null, so the instrumented hot paths cost one global read and a couple of
no-op calls when observability is off.  Turn tracing on for a scope with
:func:`use_tracer`::

    from repro.obs import Tracer, use_tracer

    with use_tracer(Tracer()) as tracer:
        drms_checkpoint(pfs, "ckpt", segment, arrays)
    print(breakdown_report(tracer))
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import NULL_METRICS, MetricsRegistry

__all__ = [
    "Span",
    "Mark",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass
class Span:
    """One timed phase on both clocks."""

    name: str
    span_id: int
    parent_id: Optional[int]
    sim_start: float
    wall_start: float
    sim_end: Optional[float] = None
    wall_end: Optional[float] = None
    #: thread that opened the span (export groups rows by thread)
    thread: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def done(self) -> bool:
        return self.sim_end is not None

    @property
    def sim_seconds(self) -> float:
        """Simulated duration (0 until the span ends)."""
        return (self.sim_end - self.sim_start) if self.done else 0.0

    @property
    def wall_seconds(self) -> float:
        return (self.wall_end - self.wall_start) if self.done else 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (bytes, pieces, task counts, ...)."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:
        state = f"{self.sim_seconds:.3f}s" if self.done else "open"
        return f"Span({self.name!r}, {state})"


@dataclass(frozen=True)
class Mark:
    """An instant event on the span timeline (bridged EventLog events,
    TC state transitions, recovery decisions)."""

    name: str
    sim_time: float
    wall_time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Span recorder + simulated-time cursor + metrics registry."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None, sim_start: float = 0.0):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: every span ever started, in start order (open ones included)
        self.spans: List[Span] = []
        self.marks: List[Mark] = []
        self._sim_now = float(sim_start)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._ids = itertools.count(1)

    # -- simulated clock ---------------------------------------------------

    @property
    def sim_now(self) -> float:
        """Current position of the simulated-time cursor."""
        return self._sim_now

    def advance(self, dt: float) -> float:
        """Charge ``dt`` simulated seconds to the open spans."""
        if dt < 0:
            raise ValueError(f"cannot advance the trace clock by {dt}")
        with self._lock:
            self._sim_now += dt
            return self._sim_now

    def sync(self, t: float) -> float:
        """Merge the cursor forward to an external simulated clock
        (never backward — Lamport-style, like the task clocks)."""
        with self._lock:
            if t > self._sim_now:
                self._sim_now = float(t)
            return self._sim_now

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of the current one."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=parent,
                sim_start=self._sim_now,
                wall_start=time.perf_counter(),
                thread=threading.get_ident(),
                attrs=dict(attrs),
            )
            self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current cursor position."""
        if attrs:
            span.attrs.update(attrs)
        span.sim_end = self._sim_now
        span.wall_end = time.perf_counter()
        stack = self._stack()
        if span in stack:  # tolerate out-of-order closes
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context manager: open a child span, close it on exit (also
        on exceptions, recording ``error`` so aborted phases show up)."""
        s = self.start(name, **attrs)
        try:
            yield s
        except BaseException as exc:
            s.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            self.end(s)

    def mark(self, name: str, sim_time: Optional[float] = None, **attrs: Any) -> Mark:
        """Record an instant event (defaults to the cursor position)."""
        m = Mark(
            name=name,
            sim_time=self._sim_now if sim_time is None else float(sim_time),
            wall_time=time.perf_counter(),
            attrs=dict(attrs),
        )
        with self._lock:
            self.marks.append(m)
        return m

    # -- queries ------------------------------------------------------------

    def roots(self) -> List[Span]:
        """Top-level spans, in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def __repr__(self) -> str:
        return f"Tracer({len(self.spans)} spans, sim_now={self._sim_now:.3f}s)"


class _NullSpan:
    """Shared inert span handed out by the null tracer."""

    __slots__ = ()
    name = "<null>"
    span_id = 0
    parent_id = None
    sim_start = sim_end = 0.0
    wall_start = wall_end = 0.0
    sim_seconds = wall_seconds = 0.0
    done = True
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager (allocation-free ``span()``)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing."""

    enabled = False

    def __init__(self):
        self.metrics = NULL_METRICS
        self.spans = []
        self.marks = []
        self._sim_now = 0.0

    def advance(self, dt: float) -> float:
        return 0.0

    def sync(self, t: float) -> float:
        return 0.0

    def current(self) -> Optional[Span]:
        return None

    def start(self, name: str, **attrs: Any):
        return _NULL_SPAN

    def end(self, span, **attrs: Any):
        return span

    def span(self, name: str, **attrs: Any):
        return _NULL_SPAN_CONTEXT

    def mark(self, name: str, sim_time: Optional[float] = None, **attrs: Any):
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: the process-wide default
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The active tracer (the shared :data:`NULL_TRACER` by default)."""
    return _current


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the active tracer (None restores the
    null); returns the tracer now active."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope a tracer: install on entry, restore the previous on exit."""
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
