"""Bridge the infra :class:`~repro.infra.events.EventLog` into a tracer.

The DRMS daemons (RC, TCs, JSA, UIC) narrate through the event log on
the *cluster* clock; checkpoint and streaming phases narrate through
spans on the tracer's cursor.  :func:`bind_event_log` subscribes a
listener that mirrors every emitted event as an instant mark at the
event's own cluster time (and tallies ``events.<kind>`` counters), so
daemon decisions — ``pool_formed``, ``checkpoint_rejected``,
``restart_fallback`` — land on the same exported timeline as the
application's I/O phases.  The JSA and RC keep the two clocks aligned by
:meth:`~repro.obs.spans.Tracer.sync`-ing the cursor to the cluster clock
around their operations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.obs.spans import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.infra.events import Event, EventLog

__all__ = ["bind_event_log"]


def bind_event_log(
    tracer: Tracer, events: "EventLog", prefix: str = "event"
) -> Callable[[], None]:
    """Mirror every future ``events.emit`` into ``tracer`` as a mark
    named ``<prefix>.<kind>`` plus an ``events.<kind>`` counter.
    Returns an unbind callable that unsubscribes the listener."""

    def _mirror(ev: "Event") -> None:
        tracer.mark(f"{prefix}.{ev.kind}", sim_time=ev.time, **ev.detail)
        tracer.metrics.counter(f"events.{ev.kind}").inc()

    events.subscribe(_mirror)
    return lambda: events.unsubscribe(_mirror)
