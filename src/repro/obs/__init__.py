"""repro.obs — unified tracing and metrics for the whole pipeline.

The paper's evidence is cost accounting (Tables 5-6 break checkpoint
and restart into their phases); this package is the measurement
substrate that produces such breakdowns from the live system:

* :mod:`repro.obs.spans`   — hierarchical spans over the simulated and
  wall clocks, with a cheap :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — counters, gauges, histograms in one
  registry shared by every producer (checkpoint engines, streaming,
  PIOFS, fault injection, comm tracing, daemon events);
* :mod:`repro.obs.export`  — Chrome trace-event JSON (``about:tracing``
  / Perfetto) and flat metrics dumps;
* :mod:`repro.obs.report`  — Table 6-style phase breakdown tables;
* :mod:`repro.obs.bridge`  — mirror the infra EventLog onto the span
  timeline.

Tracing is off by default (the null tracer); scope it on with::

    from repro.obs import Tracer, use_tracer, breakdown_report

    with use_tracer(Tracer()) as tracer:
        drms_checkpoint(pfs, "ckpt", segment, arrays)
        drms_restart(pfs, "ckpt", ntasks=12)
    print(breakdown_report(tracer))

or run ``python -m repro.tools.trace`` for a full traced
checkpoint/restart cycle of a NAS proxy application.
"""

from repro.obs.bridge import bind_event_log
from repro.obs.invariants import span_tree_violations
from repro.obs.export import (
    chrome_trace,
    metrics_dump,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.report import (
    breakdown_report,
    mlck_summary,
    op_summary,
    phase_rows,
    plancache_summary,
)
from repro.obs.spans import (
    NULL_TRACER,
    Mark,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Mark",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dump",
    "write_metrics",
    "breakdown_report",
    "plancache_summary",
    "mlck_summary",
    "op_summary",
    "phase_rows",
    "bind_event_log",
    "span_tree_violations",
]
