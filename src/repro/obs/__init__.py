"""repro.obs — unified tracing and metrics for the whole pipeline.

The paper's evidence is cost accounting (Tables 5-6 break checkpoint
and restart into their phases); this package is the measurement
substrate that produces such breakdowns from the live system:

* :mod:`repro.obs.spans`   — hierarchical spans over the simulated and
  wall clocks, with a cheap :class:`NullTracer` default;
* :mod:`repro.obs.metrics` — counters, gauges, histograms in one
  registry shared by every producer (checkpoint engines, streaming,
  PIOFS, fault injection, comm tracing, daemon events);
* :mod:`repro.obs.export`  — Chrome trace-event JSON (``about:tracing``
  / Perfetto), flat metrics dumps, and OpenMetrics/Prometheus text;
* :mod:`repro.obs.report`  — Table 6-style phase breakdown tables;
* :mod:`repro.obs.bridge`  — mirror the infra EventLog onto the span
  timeline;
* :mod:`repro.obs.flight`  — bounded per-node flight recorder whose
  rings become black-box dumps when a node dies;
* :mod:`repro.obs.forensics` — incident files and the recovery
  timeline reconstructor (``python -m repro.tools.forensics``);
* :mod:`repro.obs.health`  — fleet health gauges (replica coverage,
  drain backlog, durable lag, checkpoint cadence);
* :mod:`repro.obs.catalog` — the documented metric-name families.

Tracing is off by default (the null tracer); scope it on with::

    from repro.obs import Tracer, use_tracer, breakdown_report

    with use_tracer(Tracer()) as tracer:
        drms_checkpoint(pfs, "ckpt", segment, arrays)
        drms_restart(pfs, "ckpt", ntasks=12)
    print(breakdown_report(tracer))

or run ``python -m repro.tools.trace`` for a full traced
checkpoint/restart cycle of a NAS proxy application.
"""

from repro.obs.bridge import bind_event_log
from repro.obs.catalog import METRIC_FAMILIES, match_family
from repro.obs.invariants import span_tree_violations
from repro.obs.export import (
    chrome_trace,
    metrics_dump,
    openmetrics_text,
    write_chrome_trace,
    write_metrics,
    write_openmetrics,
)
from repro.obs.flight import (
    GLOBAL_NODE,
    NULL_FLIGHT,
    FlightEvent,
    FlightRecorder,
    NullFlightRecorder,
    get_flight,
    set_flight,
    use_flight,
)
from repro.obs.forensics import (
    INCIDENT_SCHEMA,
    ForensicTimeline,
    TimelinePhase,
    diff_incidents,
    load_events,
    load_incident,
    make_incident,
    reconstruct_timeline,
    render_diff,
    render_timeline,
    write_incident,
)
from repro.obs.health import HealthRegistry
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.report import (
    breakdown_report,
    mlck_summary,
    op_summary,
    phase_rows,
    plancache_summary,
)
from repro.obs.spans import (
    NULL_TRACER,
    Mark,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Span",
    "Mark",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_dump",
    "write_metrics",
    "openmetrics_text",
    "write_openmetrics",
    "FlightEvent",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "GLOBAL_NODE",
    "get_flight",
    "set_flight",
    "use_flight",
    "HealthRegistry",
    "INCIDENT_SCHEMA",
    "ForensicTimeline",
    "TimelinePhase",
    "load_events",
    "load_incident",
    "make_incident",
    "write_incident",
    "reconstruct_timeline",
    "render_timeline",
    "diff_incidents",
    "render_diff",
    "METRIC_FAMILIES",
    "match_family",
    "breakdown_report",
    "plancache_summary",
    "mlck_summary",
    "op_summary",
    "phase_rows",
    "bind_event_log",
    "span_tree_violations",
]
