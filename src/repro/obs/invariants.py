"""Structural invariants over a recorded span tree.

The verification harness (:mod:`repro.verify`) treats the trace itself
as an oracle output: a checkpoint or restart that produced a malformed
span tree — a child phase sticking out of its parent, two sibling
phases on one thread overlapping in simulated time, a span closed
before it opened — indicates broken phase accounting even when the
restored bytes are correct.  :func:`span_tree_violations` audits a
finished :class:`~repro.obs.spans.Tracer` and returns a human-readable
list of every violation (empty list == sound tree).

The checks, per span:

* the span is closed and ``sim_end >= sim_start``;
* the span's simulated interval lies inside its parent's
  (children *tile* their parent, never overhang it);
* siblings under one parent on one thread are pairwise non-overlapping
  in simulated time (interior overlap; shared endpoints are fine —
  zero-duration phases are common for metadata-only steps).
"""

from __future__ import annotations

from typing import List

from repro.obs.spans import Span, Tracer

__all__ = ["span_tree_violations"]

#: slack for float comparisons over the simulated clock
EPS = 1e-9


def _interval_violations(span: Span) -> List[str]:
    out = []
    if not span.done:
        out.append(f"span {span.name!r} (id {span.span_id}) was never closed")
    elif span.sim_end < span.sim_start - EPS:
        out.append(
            f"span {span.name!r} (id {span.span_id}) ends at "
            f"{span.sim_end} before it starts at {span.sim_start}"
        )
    return out


def _containment_violations(parent: Span, child: Span) -> List[str]:
    if not (parent.done and child.done):
        return []
    out = []
    if child.sim_start < parent.sim_start - EPS or (
        child.sim_end > parent.sim_end + EPS
    ):
        out.append(
            f"child span {child.name!r} [{child.sim_start}, {child.sim_end}] "
            f"overhangs parent {parent.name!r} "
            f"[{parent.sim_start}, {parent.sim_end}]"
        )
    return out


def _sibling_violations(parent_name: str, siblings: List[Span]) -> List[str]:
    """Same-thread siblings must not overlap in simulated time."""
    out = []
    by_thread = {}
    for s in siblings:
        if s.done:
            by_thread.setdefault(s.thread, []).append(s)
    for thread, group in by_thread.items():
        group = sorted(group, key=lambda s: (s.sim_start, s.sim_end))
        for a, b in zip(group, group[1:]):
            if b.sim_start < a.sim_end - EPS:
                out.append(
                    f"sibling spans {a.name!r} [{a.sim_start}, {a.sim_end}] "
                    f"and {b.name!r} [{b.sim_start}, {b.sim_end}] overlap "
                    f"under {parent_name!r} on thread {thread}"
                )
    return out


def span_tree_violations(tracer: Tracer) -> List[str]:
    """Every structural violation in the tracer's span tree (empty list
    when the tree is sound)."""
    out: List[str] = []
    for span in tracer.spans:
        out.extend(_interval_violations(span))
        children = tracer.children(span)
        for child in children:
            out.extend(_containment_violations(span, child))
        out.extend(_sibling_violations(span.name, children))
    out.extend(_sibling_violations("<root>", tracer.roots()))
    return out
