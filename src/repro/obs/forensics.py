"""Failure forensics: incident dumps and the recovery-timeline
reconstructor.

The paper's value proposition is recovery latency, so a failure should
be an *explorable artifact*, not an assertion pass/fail.  This module
stitches the three observability records of one incident — the cluster
:class:`~repro.infra.events.EventLog`, the flight recorder's black-box
dumps (:mod:`repro.obs.flight`), and optionally a tracer's spans — into
a single ordered forensic report::

    failure detected -> state selected (tier, generation, rejections)
                     -> rebuild -> resume

with per-phase latency attribution that sums to the recovery latency
the cluster reports (``RecoveryOutcome.recovery_latency_s``), a
property the flight-marked tests assert.

An **incident dump** is one JSON document (schema
``repro.forensics/1``) carrying everything needed to re-run the
analysis offline: events, black boxes, the recovery outcome, a health
snapshot, and the flat metrics.  ``python -m repro.tools.forensics``
produces and consumes these; :func:`diff_incidents` compares two.

:func:`load_events` round-trips :meth:`~repro.infra.events.EventLog.to_json`
exactly — the degenerate-input tests in ``tests/obs`` pin that down.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # runtime import is lazy: infra itself imports repro.obs
    from repro.infra.events import Event, EventLog

__all__ = [
    "INCIDENT_SCHEMA",
    "TimelineEntry",
    "TimelinePhase",
    "ForensicTimeline",
    "load_events",
    "make_incident",
    "write_incident",
    "load_incident",
    "reconstruct_timeline",
    "render_timeline",
    "diff_incidents",
    "render_diff",
]

#: incident dump schema version (DESIGN.md §13)
INCIDENT_SCHEMA = "repro.forensics/1"

#: sources merge in this order at equal timestamps: daemon events first
#: (they narrate decisions), then flight events (per-node telemetry),
#: then tracer spans (phase interiors)
_SOURCE_ORDER = {"event": 0, "flight": 1, "span": 2}


@dataclass(frozen=True)
class TimelineEntry:
    """One merged record on the forensic timeline."""

    time: float
    source: str  # "event" | "flight"
    kind: str
    node: Optional[int]
    detail: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-able timeline row."""
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "node": self.node,
            "detail": dict(self.detail),
        }


@dataclass(frozen=True)
class TimelinePhase:
    """One attributed recovery phase."""

    name: str
    start: float
    seconds: float
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.seconds


@dataclass
class ForensicTimeline:
    """The reconstructed story of one failure + recovery."""

    entries: List[TimelineEntry]
    phases: List[TimelinePhase]
    failed_node: Optional[int] = None
    job: Optional[str] = None
    chosen_prefix: Optional[str] = None
    chosen_tier: Optional[str] = None
    rejections: List[Dict[str, Any]] = field(default_factory=list)
    resumed_at: Optional[float] = None

    @property
    def total_seconds(self) -> float:
        """Sum of the attributed phase latencies — equals the cluster's
        reported recovery latency (within float tolerance)."""
        return sum(p.seconds for p in self.phases)

    def phase(self, name: str) -> Optional[TimelinePhase]:
        """The attributed phase named ``name``, or None."""
        for p in self.phases:
            if p.name == name:
                return p
        return None


# -- loaders -----------------------------------------------------------------


def load_events(
    data: Union[str, bytes, Sequence[Dict[str, Any]], EventLog]
) -> List[Event]:
    """Rebuild :class:`Event` objects from any serialized form of an
    event log: the JSON string :meth:`EventLog.to_json` produced, the
    already-parsed list of ``{time, kind, detail}`` dicts, a live
    :class:`EventLog`, or a sequence of :class:`Event` objects (passed
    through)."""
    from repro.infra.events import Event, EventLog

    if isinstance(data, EventLog):
        return list(data.events)
    if isinstance(data, (str, bytes)):
        data = json.loads(data)
    events = []
    for row in data:
        if isinstance(row, Event):
            events.append(row)
            continue
        events.append(
            Event(
                time=float(row.get("time", 0.0)),
                kind=str(row.get("kind", "")),
                detail=dict(row.get("detail", {})),
            )
        )
    return events


# -- incident dumps ----------------------------------------------------------


def make_incident(
    events: Union[EventLog, Sequence[Event], Sequence[Dict[str, Any]]],
    flight=None,
    outcome=None,
    health=None,
    metrics=None,
    tracer=None,
    job: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one incident dump (schema ``repro.forensics/1``).

    ``flight`` is a :class:`~repro.obs.flight.FlightRecorder` (its
    emitted black boxes ride along), ``outcome`` a
    :class:`~repro.infra.cluster.RecoveryOutcome`, ``health`` a
    :class:`~repro.obs.health.HealthRegistry`, ``metrics`` a
    :class:`~repro.obs.metrics.MetricsRegistry`, ``tracer`` a
    :class:`~repro.obs.spans.Tracer` whose completed spans join the
    merged timeline.
    """
    from repro.infra.events import Event, EventLog

    if isinstance(events, EventLog):
        event_rows = [e.to_dict() for e in events.events]
    else:
        event_rows = [
            e.to_dict() if isinstance(e, Event) else dict(e) for e in events
        ]
    incident: Dict[str, Any] = {
        "schema": INCIDENT_SCHEMA,
        "job": job,
        "created": event_rows[-1]["time"] if event_rows else 0.0,
        "events": event_rows,
        "blackboxes": list(flight.blackboxes) if flight is not None else [],
    }
    if tracer is not None:
        incident["spans"] = [
            {
                "name": s.name,
                "sim_start": s.sim_start,
                "sim_seconds": s.sim_seconds,
                "attrs": {k: repr(v) for k, v in s.attrs.items()},
            }
            for s in tracer.spans
            if s.done
        ]
    if outcome is not None:
        report = outcome.final_report
        bd = getattr(report, "restart_breakdown", None)
        incident["failed_node"] = outcome.failed_node
        incident["recovery"] = {
            "latency_s": outcome.recovery_latency_s,
            "node_repair_s": outcome.node_repair_s,
            "tasks_before": outcome.tasks_before,
            "tasks_after": outcome.tasks_after,
            "restarted_from": getattr(report, "restarted_from", None),
            "restart_seconds": bd.total_seconds if bd is not None else 0.0,
            "restart_kind": bd.kind if bd is not None else None,
        }
    if health is not None:
        incident["health"] = health.snapshot()
    if metrics is not None:
        incident["metrics"] = metrics.flat()
    return incident


def write_incident(path, incident: Dict[str, Any]) -> pathlib.Path:
    """Serialize an incident dump to ``path``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(incident, indent=1, default=repr))
    return path


def load_incident(source: Union[str, pathlib.Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load an incident dump from a path (or pass a dict through),
    verifying the schema tag."""
    if isinstance(source, (str, pathlib.Path)):
        source = json.loads(pathlib.Path(source).read_text())
    schema = source.get("schema")
    if schema != INCIDENT_SCHEMA:
        raise ValueError(
            f"not an incident dump: schema {schema!r} (expected "
            f"{INCIDENT_SCHEMA!r})"
        )
    return source


# -- the reconstructor -------------------------------------------------------


def _merged_entries(
    events: List[Event],
    blackboxes: Sequence[Dict[str, Any]],
    spans: Sequence[Dict[str, Any]] = (),
) -> List[TimelineEntry]:
    entries = [
        TimelineEntry(
            time=e.time,
            source="event",
            kind=e.kind,
            node=e.detail.get("node"),
            detail=dict(e.detail),
        )
        for e in events
    ]
    seen = set()
    for box in blackboxes:
        for row in box.get("events", ()):
            key = row.get("seq")
            if key is not None and key in seen:
                continue  # rings of two dumps overlap on the global ring
            seen.add(key)
            entries.append(
                TimelineEntry(
                    time=float(row.get("time", 0.0)),
                    source="flight",
                    kind=str(row.get("kind", "")),
                    node=row.get("node"),
                    detail=dict(row.get("detail", {})),
                )
            )
    for row in spans:
        entries.append(
            TimelineEntry(
                time=float(row.get("sim_start", 0.0)),
                source="span",
                kind=str(row.get("name", "")),
                node=None,
                detail={
                    "seconds": row.get("sim_seconds"),
                    **dict(row.get("attrs", {})),
                },
            )
        )
    entries.sort(key=lambda t: (t.time, _SOURCE_ORDER.get(t.source, 9)))
    return entries


def reconstruct_timeline(
    incident: Union[Dict[str, Any], EventLog, Sequence[Event]],
    blackboxes: Optional[Sequence[Dict[str, Any]]] = None,
) -> ForensicTimeline:
    """Reconstruct the failure -> tiered-restart sequence of the *last*
    incident in the record.

    Accepts a full incident dump, or a raw event log plus black boxes.
    Phase attribution (each phase's simulated seconds):

    * ``detection`` — failure injection to the TC disconnect;
    * ``failure_protocol`` — the RC's five-step protocol (TC restarts);
    * ``state_selection`` — the tier-aware recovery walk (events carry
      the chosen generation/tier and every rejection);
    * ``rebuild`` — the restart's state reconstruction, taken from the
      ``restart_seconds`` the JSA records on ``job_restarted``.

    Their sum is the recovery latency the cluster reports.
    """
    if isinstance(incident, dict):
        events = load_events(incident.get("events", []))
        blackboxes = incident.get("blackboxes", [])
        spans = incident.get("spans", [])
        recovery = incident.get("recovery", {})
    else:
        events = load_events(incident)
        blackboxes = list(blackboxes or [])
        spans = []
        recovery = {}

    tl = ForensicTimeline(
        entries=_merged_entries(events, blackboxes, spans), phases=[]
    )

    # anchor on the last observed failure: injection if recorded,
    # otherwise the first TC disconnect.
    injected = [e for e in events if e.kind == "failure_injected"]
    start_idx = 0
    t_inject = None
    if injected:
        anchor = injected[-1]
        t_inject = anchor.time
        tl.failed_node = anchor.detail.get("node")
        tl.job = anchor.detail.get("job")
        start_idx = events.index(anchor)
    window = events[start_idx:]

    def first(kind: str) -> Optional[Event]:
        for e in window:
            if e.kind == kind:
                return e
        return None

    disconnect = first("tc_disconnected")
    if tl.failed_node is None and disconnect is not None:
        tl.failed_node = disconnect.detail.get("node")
    restarted_tcs = first("tcs_restarted")
    recovery_started = first("recovery_started")
    if tl.job is None and recovery_started is not None:
        tl.job = recovery_started.detail.get("job")
    verified = first("checkpoint_verified")
    job_restarted = first("job_restarted")

    tl.rejections = [
        {
            "prefix": e.detail.get("prefix"),
            "tier": e.detail.get("tier"),
            "errors": e.detail.get("errors"),
        }
        for e in window
        if e.kind == "checkpoint_rejected"
    ]
    if verified is not None:
        tl.chosen_prefix = verified.detail.get("prefix")
        tl.chosen_tier = verified.detail.get("tier")

    # -- phase attribution --------------------------------------------------
    if disconnect is not None:
        t0 = t_inject if t_inject is not None else disconnect.time
        tl.phases.append(
            TimelinePhase(
                name="detection",
                start=t0,
                seconds=max(0.0, disconnect.time - t0),
                detail={"node": tl.failed_node},
            )
        )
        t_protocol_end = (
            restarted_tcs.time if restarted_tcs is not None else disconnect.time
        )
        tl.phases.append(
            TimelinePhase(
                name="failure_protocol",
                start=disconnect.time,
                seconds=max(0.0, t_protocol_end - disconnect.time),
                detail={
                    "healthy": restarted_tcs.detail.get("healthy")
                    if restarted_tcs is not None
                    else None
                },
            )
        )
        t_select_start = (
            recovery_started.time
            if recovery_started is not None
            else t_protocol_end
        )
        t_select_end = verified.time if verified is not None else t_select_start
        tl.phases.append(
            TimelinePhase(
                name="state_selection",
                start=t_select_start,
                seconds=max(0.0, t_select_end - t_select_start),
                detail={
                    "prefix": tl.chosen_prefix,
                    "tier": tl.chosen_tier,
                    "rejected": len(tl.rejections),
                },
            )
        )
        rebuild_seconds = 0.0
        if job_restarted is not None:
            rebuild_seconds = float(
                job_restarted.detail.get("restart_seconds", 0.0)
            )
        elif recovery:
            rebuild_seconds = float(recovery.get("restart_seconds", 0.0))
        rebuild_detail = {
            "kind": job_restarted.detail.get("restart_kind")
            if job_restarted is not None
            else recovery.get("restart_kind"),
            "ntasks": job_restarted.detail.get("ntasks")
            if job_restarted is not None
            else recovery.get("tasks_after"),
        }
        # Localized recoveries tag the phase with what was actually
        # rebuilt (lost ranks, byte scope) — the JSA attaches the
        # RebuildScope summary to its job_restarted event.
        scope = (
            job_restarted.detail.get("rebuild_scope")
            if job_restarted is not None
            else None
        )
        if scope is not None:
            rebuild_detail["rebuild_scope"] = scope
        tl.phases.append(
            TimelinePhase(
                name="rebuild",
                start=t_select_end,
                seconds=rebuild_seconds,
                detail=rebuild_detail,
            )
        )
        if job_restarted is not None:
            tl.resumed_at = t_select_end + rebuild_seconds
    return tl


# -- rendering ---------------------------------------------------------------


def render_timeline(tl: ForensicTimeline, max_entries: int = 60) -> str:
    """The forensic report as text: the merged entry stream (tail-
    truncated to ``max_entries``) followed by the phase attribution."""
    lines = []
    head = "forensic timeline"
    if tl.job is not None:
        head += f" — job {tl.job!r}"
    if tl.failed_node is not None:
        head += f", node {tl.failed_node} failed"
    lines.append(head)
    entries = tl.entries
    if len(entries) > max_entries:
        lines.append(f"  ... {len(entries) - max_entries} earlier entries elided")
        entries = entries[-max_entries:]
    for e in entries:
        where = f" node={e.node}" if e.node is not None else ""
        items = ", ".join(
            f"{k}={v!r}" for k, v in e.detail.items() if k != "node"
        )
        lines.append(
            f"  [{e.time:10.3f}s] {e.source:<6} {e.kind}{where}"
            + (f"  ({items})" if items else "")
        )
    if tl.phases:
        lines.append("phases (failure -> resume):")
        for p in tl.phases:
            extra = ""
            if p.name == "state_selection" and p.detail.get("prefix"):
                extra = (
                    f"   chose {p.detail['prefix']} "
                    f"(tier {p.detail.get('tier')}), "
                    f"{p.detail.get('rejected', 0)} rejected"
                )
            elif p.name == "rebuild" and p.detail.get("kind"):
                extra = f"   via {p.detail['kind']}"
            lines.append(f"  {p.name:<18} {p.seconds:10.3f}s{extra}")
        lines.append(f"  {'total':<18} {tl.total_seconds:10.3f}s")
    if tl.resumed_at is not None:
        lines.append(f"resumed at {tl.resumed_at:.3f}s")
    return "\n".join(lines)


# -- incident diff -----------------------------------------------------------


def diff_incidents(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    """Structured comparison of two incident dumps: phase-latency
    deltas, serving tier/generation changes, rejection counts, and
    black-box coverage."""
    ta, tb = reconstruct_timeline(a), reconstruct_timeline(b)
    phases = {}
    for name in ("detection", "failure_protocol", "state_selection", "rebuild"):
        pa, pb = ta.phase(name), tb.phase(name)
        sa = pa.seconds if pa is not None else 0.0
        sb = pb.seconds if pb is not None else 0.0
        phases[name] = {"a": sa, "b": sb, "delta": sb - sa}
    return {
        "failed_node": {"a": ta.failed_node, "b": tb.failed_node},
        "chosen": {
            "a": {"prefix": ta.chosen_prefix, "tier": ta.chosen_tier},
            "b": {"prefix": tb.chosen_prefix, "tier": tb.chosen_tier},
        },
        "rejections": {"a": len(ta.rejections), "b": len(tb.rejections)},
        "phases": phases,
        "total": {
            "a": ta.total_seconds,
            "b": tb.total_seconds,
            "delta": tb.total_seconds - ta.total_seconds,
        },
        "blackboxes": {
            "a": len(a.get("blackboxes", [])),
            "b": len(b.get("blackboxes", [])),
        },
    }


def render_diff(diff: Dict[str, Any]) -> str:
    """One readable table of a :func:`diff_incidents` result."""
    lines = ["incident diff (A vs B)"]
    ch = diff["chosen"]
    lines.append(
        f"  failed node        {diff['failed_node']['a']} vs "
        f"{diff['failed_node']['b']}"
    )
    lines.append(
        f"  state chosen       {ch['a']['prefix']} ({ch['a']['tier']}) vs "
        f"{ch['b']['prefix']} ({ch['b']['tier']})"
    )
    lines.append(
        f"  rejections         {diff['rejections']['a']} vs "
        f"{diff['rejections']['b']}"
    )
    for name, row in diff["phases"].items():
        lines.append(
            f"  {name:<18} {row['a']:10.3f}s vs {row['b']:10.3f}s  "
            f"(delta {row['delta']:+.3f}s)"
        )
    t = diff["total"]
    lines.append(
        f"  {'total':<18} {t['a']:10.3f}s vs {t['b']:10.3f}s  "
        f"(delta {t['delta']:+.3f}s)"
    )
    return "\n".join(lines)
