"""The plan cache: a bounded LRU memo for pure plan computations.

The parstream pipeline recomputes the same pure artifacts on every
checkpoint: the transfer schedule of the canonical redistribution, the
recursive Fig. 5a partition of the streamed section, the running-sum
piece offsets, the stream-position maps.  All of them are functions of
*structural* inputs only — distribution geometry, slices, scalar
parameters — so an application that checkpoints the same arrays every
few minutes pays the full planning cost each time for an identical
answer.  :class:`PlanCache` memoizes those answers.

Keying discipline (see DESIGN.md §11):

* every key starts with a ``kind`` tag (``"schedule"``,
  ``"partition"``, ``"offsets"``, ``"positions"``) so unrelated plans
  never collide;
* distributions enter keys only through
  :meth:`~repro.arrays.distributions.Distribution.fingerprint` — a
  structural digest of the ``(a, m)`` geometry — so two distribution
  objects with the same geometry share entries and *any* geometric
  change produces a fresh key (stale plans are unreachable by
  construction);
* slices and scalars enter keys directly (:class:`~repro.arrays.slices.
  Slice` is immutable and hashable).

Eviction is LRU with a bounded entry count; entries touching a
distribution can also be dropped explicitly with
:meth:`PlanCache.invalidate_distribution` (for callers that discard a
distribution and want its plans gone now rather than aged out).

Every lookup feeds the active :mod:`repro.obs` metrics registry:
``plancache.hit`` / ``plancache.miss`` / ``plancache.eviction``
counters (plus per-kind ``plancache.hit[<kind>]`` series under a live
tracer) and ``plancache.saved_seconds`` — the wall-clock cost of the
original computation, credited on every hit — so ``breakdown_report``
can attribute the planning time the cache saved.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.obs import get_tracer

__all__ = [
    "PlanCache",
    "NullPlanCache",
    "get_plan_cache",
    "set_plan_cache",
    "use_plan_cache",
]

#: default entry bound — plans are small (slices + offsets), so this is
#: generous for any realistic working set of arrays x distributions
DEFAULT_MAXSIZE = 512


class PlanCache:
    """Bounded LRU memo mapping structural plan keys to plan values.

    Values are treated as immutable by contract: callers of the cached
    plan functions (:mod:`repro.plancache.plans`) receive either the
    cached object or a shallow copy, and must not mutate entries.
    Thread-safe: the parstream executor's worker threads may plan
    concurrently.
    """

    enabled = True

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ValueError(f"plan cache needs maxsize >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        #: key -> (value, compute_seconds, distribution fingerprints)
        self._entries: "OrderedDict[tuple, Tuple[object, float, Tuple[str, ...]]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: wall seconds of original computations credited back on hits
        self.saved_seconds = 0.0

    # -- core --------------------------------------------------------------

    def get_or_compute(
        self,
        kind: str,
        key: tuple,
        compute: Callable[[], object],
        dist_fingerprints: Tuple[str, ...] = (),
    ) -> object:
        """The memoized value for ``(kind, *key)``, computing (and
        timing) it on a miss.  ``dist_fingerprints`` tags the entry for
        :meth:`invalidate_distribution`."""
        full_key = (kind,) + key
        with self._lock:
            entry = self._entries.get(full_key)
            if entry is not None:
                self._entries.move_to_end(full_key)
                self.hits += 1
                self.saved_seconds += entry[1]
        m = get_tracer().metrics
        if entry is not None:
            m.counter("plancache.hit").inc()
            m.counter("plancache.saved_seconds").inc(entry[1])
            if m.enabled:
                m.counter(f"plancache.hit[{kind}]").inc()
            return entry[0]
        # Compute outside the lock: plans are pure, so a racing duplicate
        # computation is wasted work, never a wrong answer.
        t0 = time.perf_counter()
        value = compute()
        cost = time.perf_counter() - t0
        evicted = 0
        with self._lock:
            self.misses += 1
            self._entries[full_key] = (value, cost, tuple(dist_fingerprints))
            self._entries.move_to_end(full_key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        m.counter("plancache.miss").inc()
        if m.enabled:
            m.counter(f"plancache.miss[{kind}]").inc()
        if evicted:
            m.counter("plancache.eviction").inc(evicted)
        return value

    # -- invalidation ------------------------------------------------------

    def invalidate_distribution(self, dist) -> int:
        """Drop every entry whose key involves ``dist``'s geometry;
        returns the number of entries removed.  Keys are structural, so
        a *changed* distribution never matches a stale entry anyway —
        this is for callers that retire a distribution and want its
        plans released immediately."""
        fp = dist.fingerprint()
        with self._lock:
            doomed = [
                k for k, (_, _, tags) in self._entries.items() if fp in tags
            ]
            for k in doomed:
                del self._entries[k]
            self.invalidations += len(doomed)
        if doomed:
            get_tracer().metrics.counter("plancache.invalidation").inc(len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters snapshot (the shape the benchmarks persist)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hit_rate,
                "saved_seconds": self.saved_seconds,
            }

    def __repr__(self) -> str:
        return (
            f"PlanCache({len(self)}/{self.maxsize} entries, "
            f"hits={self.hits}, misses={self.misses})"
        )


class NullPlanCache(PlanCache):
    """Caching disabled: every lookup computes.  Used to benchmark the
    uncached baseline and by tests that need cold-path behaviour."""

    enabled = False

    def __init__(self):  # no store, no lock
        self.maxsize = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.saved_seconds = 0.0

    def get_or_compute(self, kind, key, compute, dist_fingerprints=()):
        self.misses += 1
        return compute()

    def invalidate_distribution(self, dist) -> int:
        return 0

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullPlanCache()"


#: the process-wide default cache the plan functions consult
_default = PlanCache()
_current: PlanCache = _default


def get_plan_cache() -> PlanCache:
    """The active plan cache (a process-wide LRU by default)."""
    return _current


def set_plan_cache(cache: Optional[PlanCache]) -> PlanCache:
    """Install ``cache`` as the active plan cache (None restores the
    process default); returns the cache now active."""
    global _current
    _current = cache if cache is not None else _default
    return _current


@contextmanager
def use_plan_cache(cache: PlanCache) -> Iterator[PlanCache]:
    """Scope a plan cache: install on entry, restore the previous on
    exit.  Benchmarks use this to compare cold, warm, and disabled
    caching without touching the process default."""
    previous = _current
    set_plan_cache(cache)
    try:
        yield cache
    finally:
        set_plan_cache(previous)
