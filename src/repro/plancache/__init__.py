"""repro.plancache — memoized plans for the parstream hot path.

Checkpointing the same arrays repeatedly recomputes identical pure
artifacts every time: redistribution transfer schedules, Fig. 5a
stream-order partitions, piece byte offsets, stream-position maps.
This package amortizes them (the Plaat et al. observation from
PAPERS.md that real checkpoint throughput comes from amortizing plan
work and overlapping I/O):

* :mod:`repro.plancache.cache` — the bounded LRU
  (:class:`PlanCache`), its no-op twin (:class:`NullPlanCache`), and
  the process-default/scoping API;
* :mod:`repro.plancache.plans` — cached front-ends for the pure plan
  functions, keyed by structural fingerprints.

Hot paths (``streaming.serial``/``parallel``, ``arrays.assignment``,
``checkpoint.incremental``) consult the active cache via these
front-ends; ``plancache.hit`` / ``plancache.miss`` /
``plancache.eviction`` / ``plancache.saved_seconds`` metrics record
what caching bought (see DESIGN.md §11).
"""

from repro.plancache.cache import (
    NullPlanCache,
    PlanCache,
    get_plan_cache,
    set_plan_cache,
    use_plan_cache,
)
from repro.plancache.plans import (
    partition,
    partition_for_target,
    piece_offsets,
    section_stream_positions,
    streaming_plan,
    transfer_schedule,
)

__all__ = [
    "PlanCache",
    "NullPlanCache",
    "get_plan_cache",
    "set_plan_cache",
    "use_plan_cache",
    "transfer_schedule",
    "partition",
    "partition_for_target",
    "piece_offsets",
    "section_stream_positions",
    "streaming_plan",
]
