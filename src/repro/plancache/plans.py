"""Cached front-ends for the pure plan computations.

Each function here wraps one expensive pure computation from the
streaming/redistribution hot path with the active :class:`~repro.
plancache.cache.PlanCache`:

* :func:`transfer_schedule` — the point-to-point schedule of an array
  assignment (``arrays/assignment.py``), keyed by the two distribution
  fingerprints;
* :func:`partition` / :func:`partition_for_target` — the recursive
  Fig. 5a stream-order partition (``streaming/partition.py``), keyed by
  the section and the split parameters;
* :func:`piece_offsets` — the running-sum byte offsets of a partition;
* :func:`section_stream_positions` — the stream-position map of a
  sub-section (``streaming/order.py``), returned read-only because the
  cached ndarray is shared between callers;
* :func:`streaming_plan` — the (pieces, offsets) pair the parstream
  executor needs, as one composite entry.

The wrapped functions stay pure and uncached in their home modules;
callers that want memoization import from here.  Results that callers
could mutate (lists) are returned as shallow copies of the cached
tuples; :class:`~repro.arrays.slices.Slice` and
:class:`~repro.arrays.assignment.Transfer` elements are immutable.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.arrays.distributions import Distribution
from repro.arrays.slices import Slice
from repro.plancache.cache import get_plan_cache
from repro.streaming.order import check_order
from repro.streaming.order import (
    section_stream_positions as _section_stream_positions,
)
from repro.streaming.partition import partition as _partition
from repro.streaming.partition import (
    partition_for_target as _partition_for_target,
)
from repro.streaming.partition import piece_offsets as _piece_offsets

__all__ = [
    "transfer_schedule",
    "partition",
    "partition_for_target",
    "piece_offsets",
    "section_stream_positions",
    "section_index_plan",
    "streaming_plan",
]


def transfer_schedule(src: Distribution, dst: Distribution) -> List:
    """Memoized :func:`repro.arrays.assignment.build_schedule` for an
    assignment ``dst <- src``."""
    # local import: arrays.assignment must stay importable without
    # plancache (the cache layer sits above the pure layer)
    from repro.arrays.assignment import build_schedule

    sf, df = src.fingerprint(), dst.fingerprint()
    sched = get_plan_cache().get_or_compute(
        "schedule",
        (sf, df),
        lambda: tuple(build_schedule(src, dst)),
        dist_fingerprints=(sf, df),
    )
    return list(sched)


def partition(x: Slice, m: int, order: str = "F") -> List[Slice]:
    """Memoized :func:`repro.streaming.partition.partition`."""
    pieces = get_plan_cache().get_or_compute(
        "partition",
        (x, int(m), check_order(order)),
        lambda: tuple(_partition(x, m, order)),
    )
    return list(pieces)


def partition_for_target(
    x: Slice,
    itemsize: int,
    target_bytes: int = 1 << 20,
    min_pieces: int = 1,
    order: str = "F",
) -> List[Slice]:
    """Memoized :func:`repro.streaming.partition.partition_for_target`."""
    pieces = get_plan_cache().get_or_compute(
        "partition",
        (x, int(itemsize), int(target_bytes), int(min_pieces), check_order(order)),
        lambda: tuple(
            _partition_for_target(
                x, itemsize, target_bytes=target_bytes,
                min_pieces=min_pieces, order=order,
            )
        ),
    )
    return list(pieces)


def piece_offsets(pieces: List[Slice], itemsize: int) -> List[int]:
    """Memoized :func:`repro.streaming.partition.piece_offsets`."""
    offs = get_plan_cache().get_or_compute(
        "offsets",
        (tuple(pieces), int(itemsize)),
        lambda: tuple(_piece_offsets(list(pieces), itemsize)),
    )
    return list(offs)


def section_stream_positions(
    section: Slice, sub: Slice, order: str = "F"
) -> np.ndarray:
    """Memoized :func:`repro.streaming.order.section_stream_positions`.
    The returned array is **read-only** (it is shared by every caller of
    the same key)."""

    def compute() -> np.ndarray:
        pos = _section_stream_positions(section, sub, order)
        pos.setflags(write=False)
        return pos

    return get_plan_cache().get_or_compute(
        "positions", (section, sub, check_order(order)), compute
    )


def section_index_plan(
    dist: Distribution,
    section: Slice,
    order: str = "F",
    kind: str = "assigned",
):
    """Memoized :func:`repro.streaming.vectorized.
    build_section_index_plan` — the per-task (stream-position,
    local-flat) index-array pairs of a vectorized gather (kind
    ``"assigned"``) or scatter (kind ``"mapped"``).  The distribution
    enters the key only via its fingerprint, so the entry is dropped by
    :meth:`PlanCache.invalidate_distribution`.  The plan's index arrays
    are **read-only** (shared by every caller of the same key)."""
    # local import: the pure kernel module must stay importable without
    # plancache (the cache layer sits above the pure layer)
    from repro.streaming.vectorized import build_section_index_plan

    fp = dist.fingerprint()
    return get_plan_cache().get_or_compute(
        "indexplan",
        (fp, section, check_order(order), str(kind)),
        lambda: build_section_index_plan(dist, section, order=order, kind=kind),
        dist_fingerprints=(fp,),
    )


def streaming_plan(
    section: Slice,
    itemsize: int,
    target_bytes: int = 1 << 20,
    min_pieces: int = 1,
    order: str = "F",
) -> Tuple[Tuple[Slice, ...], Tuple[int, ...]]:
    """The (pieces, offsets) pair of one parstream operation, memoized
    as a single composite entry so a warm checkpoint pays one lookup."""

    def compute() -> Tuple[Tuple[Slice, ...], Tuple[int, ...]]:
        pieces = tuple(
            _partition_for_target(
                section, itemsize, target_bytes=target_bytes,
                min_pieces=min_pieces, order=order,
            )
        )
        return pieces, tuple(_piece_offsets(list(pieces), itemsize))

    return get_plan_cache().get_or_compute(
        "plan",
        (section, int(itemsize), int(target_bytes), int(min_pieces),
         check_order(order)),
        compute,
    )
