"""NAS Parallel Benchmark proxy applications (BT, LU, SP).

The paper evaluates DRMS checkpointing with the NPB BT, LU, and SP
pseudo-applications (Class A, 64³ grids).  We cannot run the Fortran
originals, so each proxy carries the original's *checkpoint-relevant
anatomy* — the distributed-array inventory (names, component counts,
byte totals), shadow widths, decomposition style, data-segment
composition (Table 4), and the outer iterate-then-checkpoint structure —
plus a small, deterministic, distribution-independent numerical kernel
so functional tests can verify end-to-end state equality across
reconfigured restarts.

Class sizes: ``toy`` (12³, real data, fast tests) through Class ``A``
(64³, the paper's benchmark size; virtual payloads) to ``C`` (162³, the
Section 6 shadow analysis).
"""

from repro.apps.meta import NPB_CLASSES, FieldSpec, count_drms_lines, npb_class_n
from repro.apps.base import NPBProxy
from repro.apps.bt import BTProxy
from repro.apps.lu import LUProxy
from repro.apps.sp import SPProxy
from repro.apps.stencil import StencilApp
from repro.apps.unstructured import UnstructuredMeshApp

__all__ = [
    "UnstructuredMeshApp",
    "NPB_CLASSES",
    "FieldSpec",
    "count_drms_lines",
    "npb_class_n",
    "NPBProxy",
    "BTProxy",
    "LUProxy",
    "SPProxy",
    "StencilApp",
    "make_proxy",
]


def make_proxy(benchmark: str, klass: str = "A", **kw):
    """Factory: ``make_proxy("bt", "A")`` etc."""
    table = {"bt": BTProxy, "lu": LUProxy, "sp": SPProxy}
    try:
        cls = table[benchmark.lower()]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {benchmark!r}; choose from {sorted(table)}"
        ) from None
    return cls(klass=klass, **kw)
