"""LU proxy: the SSOR pseudo-application.

NPB LU runs a symmetric successive over-relaxation solver.  Its DRMS
anatomy differs from BT/SP in exactly the ways the paper calls out:

* a *small* distributed inventory (~34 MB at Class A: u, rsd, frct and
  one flux grid) because LU declares its temporary work arrays as
  task-private — which is also why its private/replicated segment
  component is huge (44 MB vs ~5 MB for BT/SP, Table 4);
* a 2D decomposition (pencils along z) with 1-wide shadows.

The proxy's "SSOR" is a forward plus a backward weighted relaxation per
iteration, each preceded by a shadow refresh; both half-sweeps are
Jacobi-style so results stay distribution independent.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import NPBProxy
from repro.apps.meta import FieldSpec
from repro.drms.context import DRMSContext, TaskArrayView

__all__ = ["LUProxy"]


class LUProxy(NPBProxy):
    """The SSOR pseudo-application proxy (see module docs)."""
    benchmark = "lu"
    #: 16 scalar grids = 33.6 MB at Class A (paper: 34 MB)
    fields = (
        FieldSpec("u", 5),
        FieldSpec("rsd", 5),
        FieldSpec("frct", 5),
        FieldSpec("flux", 1),
    )
    shadow_width = 1
    decomp_dims = 2  # z axis stays whole (pencil decomposition)
    private_bytes_class_a = 44_135_872
    paper_total_lines = 9_641
    paper_added_lines = 85
    main_field = "u"
    flops_per_point = 900.0
    #: SSOR relaxation factor
    omega = 1.2

    def kernel(self, ctx: DRMSContext, views: Dict[str, TaskArrayView], it: int) -> None:
        """One LU iteration: forward + backward SSOR-style half-sweeps plus the residual update."""
        u, rsd = views["u"], views["rsd"]
        # Forward half-sweep: stronger relaxation.
        ctx.update_shadows("u")
        self.jacobi_update(ctx, u, weight=0.5 * self.omega * self.dt, axes=(1, 2, 3))
        # Backward half-sweep: complementary weight.
        ctx.update_shadows("u")
        self.jacobi_update(ctx, u, weight=0.5 * (2.0 - self.omega) * self.dt, axes=(1, 2, 3))
        # Residual field follows the solution against the forcing term.
        rsd.set_assigned(u.assigned - views["frct"].assigned)
        ctx.barrier()
