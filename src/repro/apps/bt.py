"""BT proxy: Block-Tridiagonal ADI pseudo-application.

NPB BT solves three systems of block-tridiagonal equations (one per
spatial direction) per time step.  The proxy keeps BT's array inventory
(≈84 MB of distributed arrays at Class A, the largest of the three),
its 3D block decomposition with 2-wide shadows, and its
direction-by-direction sweep structure: each iteration performs one
relaxation pass per spatial direction, refreshing shadows before each
pass — the ADI communication pattern in miniature.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import NPBProxy
from repro.apps.meta import FieldSpec
from repro.drms.context import DRMSContext, TaskArrayView

__all__ = ["BTProxy"]


class BTProxy(NPBProxy):
    """The Block-Tridiagonal pseudo-application proxy (see module docs)."""
    benchmark = "bt"
    #: 40 scalar grids = 83.9 MB at Class A (paper: 84 MB); the 18
    #: lhs components model BT's per-direction block-system storage
    #: (declared distributed in the DRMS port, like the paper notes for
    #: BT/SP temporaries).
    fields = (
        FieldSpec("u", 5),
        FieldSpec("rhs", 5),
        FieldSpec("forcing", 5),
        FieldSpec("lhs", 18),
        FieldSpec("us", 1),
        FieldSpec("vs", 1),
        FieldSpec("ws", 1),
        FieldSpec("qs", 1),
        FieldSpec("rho_i", 1),
        FieldSpec("square", 1),
        FieldSpec("speed", 1),
    )
    shadow_width = 2
    decomp_dims = 3
    private_bytes_class_a = 5_374_784
    paper_total_lines = 10_973
    paper_added_lines = 107
    main_field = "u"
    flops_per_point = 1200.0  # BT is the most expensive per point

    def kernel(self, ctx: DRMSContext, views: Dict[str, TaskArrayView], it: int) -> None:
        """One BT iteration: three directional ADI-style relaxation sweeps plus the rhs update."""
        u = views["u"]
        # ADI in miniature: one relaxation sweep per direction, with a
        # shadow refresh before each directional pass.
        for axis in (1, 2, 3):
            ctx.update_shadows("u")
            self.jacobi_update(ctx, u, weight=0.5 * self.dt, axes=(axis,))
        # rhs accumulates the current solution minus the forcing term —
        # keeps a second 5-component field live through checkpoints.
        rhs, forcing = views["rhs"], views["forcing"]
        rhs.set_assigned(u.assigned - self.dt * forcing.assigned)
        ctx.barrier()
