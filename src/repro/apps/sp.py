"""SP proxy: the Scalar-Pentadiagonal ADI pseudo-application.

NPB SP factorizes into scalar pentadiagonal systems per direction.  The
proxy keeps SP's inventory (≈48 MB at Class A: the 5-component state,
rhs, and forcing plus eight auxiliary scalar grids such as the velocity
components and ``ainv``), a 3D block decomposition with 2-wide shadows,
and a per-iteration structure of directional relaxations plus the
recomputation of the auxiliary scalar fields from the state — giving it
the smallest data segment of the three (Table 4).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.apps.base import NPBProxy
from repro.apps.meta import FieldSpec
from repro.drms.context import DRMSContext, TaskArrayView

__all__ = ["SPProxy"]


class SPProxy(NPBProxy):
    """The Scalar-Pentadiagonal pseudo-application proxy (see module docs)."""
    benchmark = "sp"
    #: 23 scalar grids = 48.2 MB at Class A (paper: 48 MB)
    fields = (
        FieldSpec("u", 5),
        FieldSpec("rhs", 5),
        FieldSpec("forcing", 5),
        FieldSpec("us", 1),
        FieldSpec("vs", 1),
        FieldSpec("ws", 1),
        FieldSpec("qs", 1),
        FieldSpec("rho_i", 1),
        FieldSpec("speed", 1),
        FieldSpec("square", 1),
        FieldSpec("ainv", 1),
    )
    shadow_width = 2
    decomp_dims = 3
    private_bytes_class_a = 5_621_696
    paper_total_lines = 9_561
    paper_added_lines = 99
    main_field = "u"
    flops_per_point = 700.0

    def kernel(self, ctx: DRMSContext, views: Dict[str, TaskArrayView], it: int) -> None:
        """One SP iteration: directional sweeps plus recomputation of the auxiliary scalar fields."""
        u = views["u"]
        # Scalar-pentadiagonal ADI in miniature: directional relaxations
        # (shadow width 2 lets one refresh serve a radius-1 pass cleanly).
        for axis in (1, 2, 3):
            ctx.update_shadows("u")
            self.jacobi_update(ctx, u, weight=0.4 * self.dt, axes=(axis,))
        # Recompute the auxiliary scalar fields from the state, the way
        # SP derives us/vs/ws/qs/rho_i/speed/square from u each step.
        own = u.assigned  # (5, nz, ny, nx) owned block
        rho = own[0]
        rho_i = 1.0 / np.maximum(rho, 1e-12)
        views["rho_i"].set_assigned(rho_i[None])
        views["us"].set_assigned((own[1] * rho_i)[None])
        views["vs"].set_assigned((own[2] * rho_i)[None])
        views["ws"].set_assigned((own[3] * rho_i)[None])
        sq = 0.5 * (own[1] ** 2 + own[2] ** 2 + own[3] ** 2) * rho_i
        views["square"].set_assigned(sq[None])
        views["qs"].set_assigned((sq * rho_i)[None])
        views["speed"].set_assigned(np.sqrt(np.abs(own[4] * rho_i))[None])
        views["ainv"].set_assigned(rho_i[None])
        views["rhs"].set_assigned(own - self.dt * views["forcing"].assigned)
        ctx.barrier()
