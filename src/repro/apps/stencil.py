"""A small generic grid application for examples and tests.

``StencilApp`` is the simplest DRMS-conforming program: one distributed
2D/3D field relaxed by a clamped Jacobi stencil, checkpointing on a
fixed cadence.  It exists so examples and tests can exercise the full
checkpoint / reconfigured-restart / failure-recovery machinery without
dragging in the NPB inventories.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.arrays.distributions import Block, Distribution
from repro.drms.app import DRMSApplication
from repro.drms.context import CheckpointStatus, DRMSContext
from repro.drms.soq import SOQSpec

__all__ = ["StencilApp"]


class StencilApp:
    """Jacobi relaxation of one block-distributed field."""

    def __init__(
        self,
        shape: Sequence[int] = (24, 24),
        weight: float = 0.4,
        checkpoint_every: int = 5,
        field: str = "grid",
        policy=None,
    ):
        self.shape = tuple(int(s) for s in shape)
        self.weight = float(weight)
        self.checkpoint_every = int(checkpoint_every)
        self.field = field
        #: explicit cadence policy; None derives the Fig. 1 fixed
        #: cadence from ``checkpoint_every``
        self.policy = policy

    def initial(self, shape) -> np.ndarray:
        """Initial condition: a hot corner relaxing into a cold domain."""
        out = np.zeros(shape)
        # a hot spot in the corner relaxing into the domain
        hot = tuple(slice(0, max(1, s // 4)) for s in shape)
        out[hot] = 100.0
        return out

    def main(self, ctx: DRMSContext, niter: int, prefix: str) -> float:
        """The SPMD program: Fig. 1 loop over one distributed field."""
        ctx.initialize()
        dist = ctx.create_distribution(
            self.shape, shadow=(1,) * len(self.shape)
        )
        g = ctx.distribute(
            self.field, dist, dtype=np.float64, init_global=self.initial
        )
        from repro.policy import CheckpointPolicy

        pol = self.policy if self.policy is not None else ctx.policy
        if pol is None:
            pol = CheckpointPolicy.every_iterations(self.checkpoint_every)
        for it in ctx.iterations(1, niter + 1):
            if pol.rules or pol.throttles:
                status, delta = ctx.policy_checkpoint(
                    prefix, policy=pol, final=(it == niter)
                )
                if status is CheckpointStatus.RESTARTED and delta != 0:
                    g = ctx.distribute(self.field, ctx.adjust(self.field))
            ctx.update_shadows(self.field)
            self._relax(ctx, g)
            ctx.barrier()
        return float(g.assigned.sum())

    def _relax(self, ctx: DRMSContext, view) -> None:
        arr = view.array
        dist = arr.distribution
        a, m = dist.assigned(ctx.rank), dist.mapped(ctx.rank)
        if a.is_empty:
            return
        loc = view.local
        base = [a[ax].indices() - m[ax].first for ax in range(len(self.shape))]
        center = loc[np.ix_(*base)]
        acc = np.zeros_like(center)
        for ax in range(len(self.shape)):
            for delta in (-1, 1):
                pos = list(base)
                shifted = np.clip(a[ax].indices() + delta, 0, self.shape[ax] - 1)
                pos[ax] = shifted - m[ax].first
                acc += loc[np.ix_(*pos)]
        k = 2 * len(self.shape)
        view.set_assigned((1 - self.weight) * center + self.weight / k * acc)

    def build_application(self, machine=None, pfs=None, **options) -> DRMSApplication:
        """A DRMSApplication wrapping this stencil program."""
        return DRMSApplication(
            self.main,
            name="stencil",
            machine=machine,
            pfs=pfs,
            soq=SOQSpec(min_tasks=1, name="stencil"),
            **options,
        )
