"""NPB-style verification for the proxy solvers.

The NAS Parallel Benchmarks declare a run *verified* when class-
dependent reference norms match the computed solution to a tolerance.
Our proxies adopt the same discipline at the reproduction's scales: the
table below pins the L1 mean and L2 norms of the main field after a
fixed number of iterations at the ``toy`` class — computed once from
the (distribution-independent) kernels and then frozen, so any change
to the numerics, the distribution machinery, or checkpoint/restart
paths that perturbs results trips verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ReproError

__all__ = ["VerificationError", "ReferenceNorms", "verify_field", "REFERENCE"]

#: verification tolerance, matching NPB's 1e-8 relative-error rule
EPSILON = 1e-8

#: fixed verification workload
VERIFY_ITERS = 4


class VerificationError(ReproError):
    """The solution does not match the class reference norms."""


@dataclass(frozen=True)
class ReferenceNorms:
    """Frozen reference values for (benchmark, class, iterations)."""

    mean: float
    l2: float


#: reference norms of the main field u after VERIFY_ITERS iterations at
#: class 'toy' (12^3), checkpointing disabled.  Regenerate with
#: `python -m pytest tests/apps/test_verify.py -k regenerate -s` if the
#: kernels are deliberately changed.
REFERENCE: Dict[Tuple[str, str], ReferenceNorms] = {
    ("bt", "toy"): ReferenceNorms(mean=1.4706903594771237, l2=138.19109222192077),
    ("lu", "toy"): ReferenceNorms(mean=1.470690359477124, l2=138.49630100482588),
    ("sp", "toy"): ReferenceNorms(mean=1.4706903594771237, l2=138.36731272064597),
}


def field_norms(field: np.ndarray) -> ReferenceNorms:
    return ReferenceNorms(
        mean=float(np.mean(field)), l2=float(np.linalg.norm(field.ravel()))
    )


def verify_field(
    benchmark: str,
    klass: str,
    field: np.ndarray,
    epsilon: float = EPSILON,
) -> ReferenceNorms:
    """Check ``field`` against the frozen reference; returns the
    computed norms, raises :class:`VerificationError` on mismatch or
    when no reference exists for the configuration."""
    key = (benchmark.lower(), klass)
    ref = REFERENCE.get(key)
    got = field_norms(field)
    if ref is None:
        raise VerificationError(
            f"no reference norms for {key}; computed mean={got.mean!r}, "
            f"l2={got.l2!r}"
        )
    for name, expect, actual in (
        ("mean", ref.mean, got.mean),
        ("l2", ref.l2, got.l2),
    ):
        denom = abs(expect) if expect else 1.0
        if abs(actual - expect) / denom > epsilon:
            raise VerificationError(
                f"{benchmark}/{klass} {name} norm {actual!r} differs from "
                f"reference {expect!r} beyond {epsilon}"
            )
    return got
