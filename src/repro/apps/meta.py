"""NPB metadata: class geometries, field specs, source-line accounting.

The Class A..C grid sizes follow the NPB 1 report [3]; the Section 6
analysis uses BT Class C (162³) on 125 processors.  ``toy`` is this
reproduction's functional-test size.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = ["NPB_CLASSES", "npb_class_n", "FieldSpec", "count_drms_lines", "DRMS_CALL_RE"]

#: grid edge length per problem class (cubic grids)
NPB_CLASSES: Dict[str, int] = {
    "toy": 12,
    "S": 12,
    "W": 24,
    "A": 64,
    "B": 102,
    "C": 162,
}


def npb_class_n(klass: str) -> int:
    """Grid edge length of an NPB class (raises on unknown classes)."""
    try:
        return NPB_CLASSES[klass]
    except KeyError:
        raise ValueError(
            f"unknown NPB class {klass!r}; choose from {sorted(NPB_CLASSES)}"
        ) from None


@dataclass(frozen=True)
class FieldSpec:
    """One distributed field: ``components`` scalars on the n³ grid,
    stored as a single rank-4 distributed array (component axis
    replicated, spatial axes decomposed)."""

    name: str
    components: int
    dtype: str = "<f8"

    def shape(self, n: int) -> tuple:
        return (self.components, n, n, n)

    def nbytes(self, n: int) -> int:
        return self.components * n ** 3 * np.dtype(self.dtype).itemsize


#: lines that count as "added to conform to the DRMS programming model"
#: (Table 1): calls into the DRMS API or the context's DRMS methods.
DRMS_CALL_RE = re.compile(
    r"\b(drms_\w+|ctx\.(initialize|create_distribution|distribute|adjust|"
    r"reconfig_checkpoint|reconfig_chkenable|iterations|set_replicated|"
    r"set_control|update_shadows))\b"
)


def count_drms_lines(obj: Callable) -> int:
    """Count the source lines of ``obj`` that exercise the DRMS API —
    this reproduction's analogue of the paper's Table 1 'number of new
    lines added' measurement."""
    src = inspect.getsource(obj)
    return sum(1 for line in src.splitlines() if DRMS_CALL_RE.search(line))
