"""NPBProxy: common machinery of the BT/LU/SP proxy applications.

Each proxy is a DRMS-conforming SPMD program with the Fig. 1 structure:
declare and distribute the field inventory, then iterate the solver,
checkpointing every ``checkpoint_every`` iterations; after a restart
with ``delta != 0`` the arrays are adjusted and redistributed.  The
numerical kernels are small Jacobi-style relaxations — chosen because
they are *distribution independent* (bitwise-identical results for any
task count), which is what lets the test suite assert exact state
equality across reconfigured restarts.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.meta import FieldSpec, npb_class_n
from repro.arrays.distributions import Block, Distribution, Replicated
from repro.checkpoint.segment import SYSTEM_SEGMENT_BYTES, SegmentProfile
from repro.drms.app import DRMSApplication
from repro.drms.context import CheckpointStatus, DRMSContext, TaskArrayView
from repro.drms.soq import SOQSpec
from repro.errors import ReconfigurationError

__all__ = ["NPBProxy"]


class NPBProxy:
    """Base class for the three NPB proxy applications."""

    benchmark: str = "base"
    #: the distributed-array inventory (subclasses set this)
    fields: Tuple[FieldSpec, ...] = ()
    #: shadow (ghost) width on decomposed spatial axes
    shadow_width: int = 1
    #: spatial axes that may be decomposed (3 = 3D blocks; 2 = the LU
    #: style where the z axis stays whole)
    decomp_dims: int = 3
    #: private/replicated segment bytes at Class A (paper Table 4)
    private_bytes_class_a: int = 0
    #: paper Table 1 context (source-line counts of the Fortran codes)
    paper_total_lines: int = 0
    paper_added_lines: int = 0
    #: the codes were compiled for a minimum of 4 tasks; local-section
    #: storage is fixed at that size (paper Section 5)
    compiled_min_tasks: int = 4
    #: field updated by the kernel / checked by tests
    main_field: str = "u"
    #: nominal kernel work per grid point per iteration (flops)
    flops_per_point: float = 400.0

    def __init__(self, klass: str = "A", store_data: Optional[bool] = None):
        self.klass = klass
        self.n = npb_class_n(klass)
        # real data for test-sized grids, virtual payloads at bench scale
        self.store_data = store_data if store_data is not None else self.n <= 24
        self.dt = 0.05

    # -- geometry -------------------------------------------------------------

    def field_by_name(self, name: str) -> FieldSpec:
        """The FieldSpec with the given name."""
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"{self.benchmark}: no field {name!r}")

    @property
    def array_bytes_total(self) -> int:
        """Total distributed-array bytes (the Table 3 'array' column)."""
        return sum(f.nbytes(self.n) for f in self.fields)

    def grid_fixed(self) -> Tuple[int, ...]:
        """Process-grid pinning: component axis is never distributed;
        with ``decomp_dims == 2`` the z axis also stays whole."""
        if self.decomp_dims == 3:
            return (1, 0, 0, 0)
        return (1, 1, 0, 0)

    def field_distribution(self, field: FieldSpec, ntasks: int) -> Distribution:
        """The distribution of one field over ``ntasks`` (grid + shadows)."""
        from repro.arrays.distributions import process_grid

        grid = process_grid(ntasks, 4, fixed=self.grid_fixed())
        s = self.shadow_width
        shadow = (0,) + tuple(
            s if grid[i + 1] > 1 else 0 for i in range(3)
        )
        axes = [Replicated() if grid[0] == 1 else Block()] + [Block()] * 3
        return Distribution(
            field.shape(self.n), axes, ntasks, grid=grid, shadow=shadow
        )

    def local_section_bytes(self, ntasks: Optional[int] = None) -> int:
        """Per-task storage for the local sections of every field at the
        compile-time minimum task count (Table 4 'Local sections').

        Fortran codes allocate the full halo pad on every decomposed
        axis regardless of position in the process grid (``1-s : n+s``),
        so the compile-time storage uses the *unclipped* shadow width —
        slightly more than the runtime mapped sections, which clip at
        the array bounds.
        """
        nt = ntasks or self.compiled_min_tasks
        total = 0
        for f in self.fields:
            dist = self.field_distribution(f, nt)
            elems = 1
            for ax in range(4):
                extent = dist.assigned(0)[ax].size
                if dist.grid[ax] > 1:
                    extent += 2 * dist.shadow[ax]
                elems *= extent
            total += elems * np.dtype(f.dtype).itemsize
        return total

    def private_bytes(self) -> int:
        """Private/replicated component, scaled with the grid volume for
        non-A classes (it is dominated by grid-sized scratch arrays)."""
        scale = (self.n / npb_class_n("A")) ** 3
        return int(self.private_bytes_class_a * scale)

    def system_bytes(self) -> int:
        """System-related component: constant ~33 MB of library buffers
        for real classes; scaled down for the test-only toy class so toy
        runs do not drag benchmark-scale padding around."""
        if self.n >= npb_class_n("A"):
            return SYSTEM_SEGMENT_BYTES
        return int(SYSTEM_SEGMENT_BYTES * (self.n / npb_class_n("A")) ** 3)

    def segment_profile(self) -> SegmentProfile:
        """The Table 4 composition of one task's data segment."""
        return SegmentProfile(
            local_section_bytes=self.local_section_bytes(),
            system_bytes=self.system_bytes(),
            private_bytes=self.private_bytes(),
        )

    @property
    def spmd_segment_bytes(self) -> int:
        """Per-task file size of the conventional (SPMD) checkpoint —
        the whole data segment, independent of the run's task count."""
        return self.segment_profile().total_bytes

    def drms_state_bytes(self) -> Dict[str, int]:
        """Predicted DRMS saved-state composition (Table 3, DRMS)."""
        seg = self.spmd_segment_bytes
        arr = self.array_bytes_total
        return {"data": seg, "array": arr, "total": seg + arr}

    def spmd_state_bytes(self, ntasks: int) -> int:
        """Predicted SPMD saved-state size at ``ntasks`` (Table 3)."""
        return self.spmd_segment_bytes * ntasks

    # -- initial data ------------------------------------------------------------

    def initial_field(self, name: str, shape: Sequence[int]) -> np.ndarray:
        """Deterministic smooth-ish initial condition (cheap integer
        hash of the index mesh, distinct per field).  Uses a stable
        content hash: Python's ``hash`` is randomized per process and
        would break cross-run verification."""
        import zlib

        seed = (zlib.crc32(name.encode()) & 0xFFFF) or 1
        grids = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
        acc = np.zeros(shape, dtype=np.float64)
        for i, g in enumerate(grids):
            acc += (i + 2) * g * (seed % (i + 3) + 1)
        return 1.0 + (acc % 17) / 17.0

    # -- the DRMS-conforming SPMD program (the Fig. 1 skeleton) --------------------

    def spmd_main(
        self,
        ctx: DRMSContext,
        niter: int,
        prefix: str,
        checkpoint_every: int = 10,
        enable_mode: bool = False,
        policy=None,
    ) -> float:
        """Run ``niter`` solver iterations with the checkpoint cadence
        decided by a :class:`~repro.policy.engine.CheckpointPolicy`:
        ``policy`` if given, else the application's attached policy,
        else the Fig. 1 fixed cadence built from ``checkpoint_every``
        (iterations 1, 1+every, ... — the old hardcoded ``it % every ==
        1`` test never fired for ``every=1``).  ``enable_mode`` uses
        the enabling (system-initiated) checkpoint variant, so the
        JSA's signal still gates the write at policy-chosen SOPs."""
        from repro.policy import CheckpointPolicy

        ctx.initialize()
        views: Dict[str, TaskArrayView] = {}
        for f in self.fields:
            dist = self.field_distribution(f, ctx.size)
            views[f.name] = ctx.distribute(
                f.name,
                dist,
                dtype=np.dtype(f.dtype),
                init_global=(
                    (lambda shape, _n=f.name: self.initial_field(_n, shape))
                    if self.store_data
                    else None
                ),
            )
        ctx.set_replicated("dt", self.dt)
        ctx.set_replicated("niter", niter)
        ctx.set_control("checkpoint_every", checkpoint_every)
        pol = policy if policy is not None else ctx.policy
        if pol is None:
            pol = CheckpointPolicy.every_iterations(checkpoint_every)

        for it in ctx.iterations(1, niter + 1):
            if pol.rules or pol.throttles:
                status, delta = ctx.policy_checkpoint(
                    prefix, policy=pol, final=(it == niter),
                    enable_mode=enable_mode,
                )
                if status is CheckpointStatus.RESTARTED and delta != 0:
                    for f in self.fields:
                        views[f.name] = ctx.distribute(f.name, ctx.adjust(f.name))
            self.step(ctx, views, it)
        return self.residual(ctx, views)

    def step(self, ctx: DRMSContext, views: Dict[str, TaskArrayView], it: int) -> None:
        """One solver iteration: subclasses implement ``kernel``; every
        mode charges the nominal compute time."""
        ctx.compute(self.iter_seconds(ctx.size))
        if self.store_data:
            self.kernel(ctx, views, it)

    def kernel(self, ctx: DRMSContext, views: Dict[str, TaskArrayView], it: int) -> None:
        raise NotImplementedError

    def residual(self, ctx: DRMSContext, views: Dict[str, TaskArrayView]) -> float:
        """Sum of the task's owned main-field values (a cheap, exactly
        reproducible figure tests can compare)."""
        if not self.store_data:
            return 0.0
        return float(views[self.main_field].assigned.sum())

    def iter_seconds(self, ntasks: int) -> float:
        """Nominal per-iteration compute time on the 67 MHz nodes."""
        total_flops = self.n ** 3 * self.flops_per_point
        return total_flops / (67e6 * max(1, ntasks))

    # -- stencil helper shared by the kernels ------------------------------------

    def jacobi_update(
        self, ctx: DRMSContext, view: TaskArrayView, weight: float, axes: Sequence[int]
    ) -> None:
        """One clamped-boundary Jacobi relaxation of the view's field
        along the given spatial axes (1..3).  Reads the mapped section
        (which must hold fresh shadows), writes the assigned section;
        element results do not depend on the decomposition."""
        arr = view.array
        dist = arr.distribution
        t = ctx.rank
        a, m = dist.assigned(t), dist.mapped(t)
        if a.is_empty:
            return
        loc = view.local
        nmax = self.n
        base_pos = []
        for ax in range(4):
            mr = m[ax]
            base_pos.append(a[ax].indices() - mr.first)
        center = loc[np.ix_(*base_pos)]
        acc = np.zeros_like(center)
        for ax in axes:
            for delta in (-1, 1):
                pos = list(base_pos)
                shifted = np.clip(a[ax].indices() + delta, 0, nmax - 1)
                pos[ax] = shifted - m[ax].first
                acc += loc[np.ix_(*pos)]
        k = 2 * len(axes)
        view.set_assigned((1.0 - weight) * center + (weight / k) * acc)

    # -- application factory -----------------------------------------------------

    def soq_spec(self) -> SOQSpec:
        """Resource section: at least ``compiled_min_tasks`` tasks for
        real classes (the paper compiled the codes for >= 4)."""
        min_tasks = 1 if self.n <= 24 else self.compiled_min_tasks
        return SOQSpec(min_tasks=min_tasks, name=self.benchmark)

    def build_application(self, machine=None, pfs=None, **options) -> DRMSApplication:
        """A DRMSApplication wrapping this proxy's SPMD program."""
        options.setdefault("segment_profile", self.segment_profile())
        options.setdefault("store_data", self.store_data)
        return DRMSApplication(
            self.spmd_main,
            name=f"{self.benchmark}.{self.klass}",
            machine=machine,
            pfs=pfs,
            soq=self.soq_spec(),
            **options,
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(class={self.klass}, n={self.n}, "
            f"fields={len(self.fields)}, arrays={self.array_bytes_total / 2**20:.1f}MB)"
        )
