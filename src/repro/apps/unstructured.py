"""An unstructured-mesh application: the paper's "wider class" claim.

Section 7 distinguishes DRMS from the structured-grid-only recovery of
Silva et al. [16]: DRMS "covers a wider class of applications, including
those with sparse and unstructured data distributed in a non-uniform
manner" — possible because array sections are arbitrary index lists,
not just regular triplets.

:class:`UnstructuredMeshApp` solves a Jacobi relaxation on a planar
graph (networkx).  Vertices are partitioned into *irregular, non-
uniform* parts (BFS growth from spread seeds); each task's assigned
section is an :class:`~repro.arrays.distributions.Indexed` vertex list
and its mapped section additionally holds the 1-hop ghost vertices —
an explicit mapped-section override, since no shadow width can express
a graph halo.  Checkpoints stream the vertex array in plain index
order, so a restart may re-partition the mesh for any new task count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.arrays.distributions import Distribution, Indexed
from repro.arrays.ranges import Range
from repro.arrays.slices import Slice
from repro.drms.app import DRMSApplication
from repro.drms.context import CheckpointStatus, DRMSContext
from repro.drms.soq import SOQSpec
from repro.errors import DistributionError

__all__ = ["UnstructuredMeshApp", "partition_graph", "graph_distribution"]


def partition_graph(graph: nx.Graph, nparts: int, seed: int = 7) -> List[List[int]]:
    """Partition vertices into ``nparts`` connected-ish, *non-uniform*
    parts by multi-source BFS growth from spread seed vertices.  Parts
    differ in size (irregular by construction) but every vertex lands in
    exactly one part."""
    if nparts < 1:
        raise DistributionError("need at least one part")
    nodes = sorted(graph.nodes)
    if nparts >= len(nodes):
        parts = [[v] for v in nodes]
        parts += [[] for _ in range(nparts - len(nodes))]
        return parts
    rng = np.random.default_rng(seed)
    seeds = list(rng.choice(nodes, size=nparts, replace=False))
    owner: Dict[int, int] = {s: i for i, s in enumerate(seeds)}
    frontiers: List[List[int]] = [[s] for s in seeds]
    remaining = set(nodes) - set(seeds)
    while remaining:
        progressed = False
        for i in range(nparts):
            nxt = []
            for v in frontiers[i]:
                for w in graph.neighbors(v):
                    if w in remaining:
                        owner[w] = i
                        remaining.discard(w)
                        nxt.append(w)
                        progressed = True
            frontiers[i] = nxt
        if not progressed:
            # disconnected leftovers: round-robin them
            for k, v in enumerate(sorted(remaining)):
                owner[v] = k % nparts
            break
    parts: List[List[int]] = [[] for _ in range(nparts)]
    for v in nodes:
        parts[owner[v]].append(v)
    return [sorted(p) for p in parts]


def graph_distribution(
    graph: nx.Graph, nparts: int, seed: int = 7
) -> Distribution:
    """An Indexed distribution of the vertex array over ``nparts`` tasks
    with 1-hop ghost vertices as explicit mapped overrides."""
    nv = graph.number_of_nodes()
    parts = partition_graph(graph, nparts, seed=seed)
    assigned = [Range(p) for p in parts]
    mapped = []
    for p in parts:
        ghost = set(p)
        for v in p:
            ghost.update(graph.neighbors(v))
        mapped.append(Slice([Range(sorted(ghost))]))
    return Distribution(
        (nv,), [Indexed(assigned)], nparts, grid=(nparts,), mapped=mapped
    )


class UnstructuredMeshApp:
    """Graph Jacobi relaxation under irregular DRMS distributions."""

    def __init__(self, nv: int = 60, graph_seed: int = 3, weight: float = 0.5):
        # a planar-ish random geometric mesh; deterministic
        self.graph = nx.random_geometric_graph(nv, 0.25, seed=graph_seed)
        # ensure connectivity for clean BFS partitions
        comps = list(nx.connected_components(self.graph))
        for a, b in zip(comps, comps[1:]):
            self.graph.add_edge(min(a), min(b))
        self.nv = nv
        self.weight = float(weight)
        #: degree vector (replicated, problem-specific)
        self.degree = np.array([max(1, d) for _, d in sorted(self.graph.degree)])

    def initial_values(self, shape) -> np.ndarray:
        """Initial condition: a heat source at vertex 0."""
        out = np.zeros(shape)
        out[0] = 100.0  # heat source at vertex 0
        return out

    # -- the SPMD program ---------------------------------------------------

    def main(self, ctx: DRMSContext, niter: int, prefix: str) -> float:
        """The SPMD program: graph Jacobi with irregular redistribution on restart."""
        ctx.initialize()
        dist = graph_distribution(self.graph, ctx.size)
        x = ctx.distribute("x", dist, init_global=self.initial_values)
        for it in ctx.iterations(1, niter + 1):
            if it % 4 == 1:
                status, delta = ctx.reconfig_checkpoint(prefix)
                if status is CheckpointStatus.RESTARTED and delta != 0:
                    # re-partition the mesh for the new task count (the
                    # application-supplied irregular redistribution)
                    dist = graph_distribution(self.graph, ctx.size)
                    x = ctx.distribute("x", dist)
            ctx.update_shadows("x")
            self._relax(ctx, x)
            ctx.barrier()
        return float(x.assigned.sum())

    def _relax(self, ctx: DRMSContext, view) -> None:
        dist = view.array.distribution
        a = dist.assigned(ctx.rank)[0]
        if a.is_empty:
            return
        m = dist.mapped(ctx.rank)[0]
        loc = view.local  # values for every mapped vertex, in m order
        midx = m.indices()
        pos = {int(v): i for i, v in enumerate(midx)}
        new = np.empty(a.size)
        for k, v in enumerate(a.indices()):
            nbrs = [pos[w] for w in self.graph.neighbors(int(v))]
            avg = loc[nbrs].mean() if nbrs else loc[pos[int(v)]]
            new[k] = (1 - self.weight) * loc[pos[int(v)]] + self.weight * avg
        view.set_assigned(new)

    def build_application(self, machine=None, pfs=None, **options) -> DRMSApplication:
        """A DRMSApplication wrapping the mesh program."""
        return DRMSApplication(
            self.main,
            name="unstructured",
            machine=machine,
            pfs=pfs,
            soq=SOQSpec(min_tasks=1, name="unstructured"),
            **options,
        )
