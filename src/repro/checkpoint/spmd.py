"""Conventional (non-reconfigurable) SPMD checkpointing.

Every task saves its *entire* data segment — stack, replicated and
private data, and the storage for its mapped array sections — to a
separate file, then all tasks synchronize (the approach of refs
[6, 10, 18]).  Saved state therefore grows linearly with the task
count, and restart is only possible on exactly the checkpointing task
count; both properties are what the paper's DRMS scheme removes.

Per-task payloads (exact Python state of non-conforming applications)
are stored verbatim; the bulk of the segment is a sized sparse span,
like the DRMS segment file.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    _publish_breakdown,
)
from repro.checkpoint.format import (
    read_manifest,
    sha1_hex,
    task_segment_name,
    write_manifest,
)
from repro.checkpoint.segment import DataSegment, SegmentProfile
from repro.checkpoint.validate import verify_stored_sha1
from repro.errors import CheckpointError, MemoryTierError, RestartError
from repro.obs import get_tracer
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.streaming.executor import run_tasks

__all__ = ["spmd_checkpoint", "spmd_restart", "SPMDRestoredState"]


@dataclass
class SPMDRestoredState:
    """Per-task state recovered from an SPMD checkpoint."""

    ntasks: int
    payloads: List[Any]
    segment_bytes: List[int]
    manifest: Dict


def _encode_task_file(payload: Any, segment_bytes: int) -> Tuple[bytes, int]:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = len(body).to_bytes(8, "little") + body
    pad = max(0, segment_bytes - len(header))
    return header, pad


def _decode_task_file(data: bytes) -> Any:
    if len(data) < 8:
        raise CheckpointError("task segment too short")
    n = int.from_bytes(data[:8], "little")
    if len(data) < 8 + n:
        raise CheckpointError("task segment header truncated")
    return pickle.loads(data[8 : 8 + n])


def spmd_checkpoint(
    pfs: PIOFS,
    prefix: str,
    ntasks: int,
    segment_bytes: int,
    payloads: Optional[Sequence[Any]] = None,
    app_name: str = "",
    tier: str = "pfs",
    l1=None,
    drain=None,
) -> CheckpointBreakdown:
    """Write one segment file per task, all tasks concurrently.

    ``segment_bytes`` is the per-task data-segment size — fixed at
    compile time (for the minimum task count) in the Fortran codes the
    paper measures, hence identical for every task and every run size.
    ``payloads`` carries exact per-task state for functional round
    trips; omitted for size/timing studies.

    ``tier``/``l1``/``drain`` mirror
    :func:`~repro.checkpoint.drms.drms_checkpoint`: memory tiers
    capture into the L1 store at memory/switch speed and (for
    ``"memory+pfs"``) promote to the PFS through a drain.
    """
    if tier != "pfs":
        if tier not in ("memory", "memory+pfs"):
            raise CheckpointError(
                f"unknown checkpoint tier {tier!r} "
                "(expected 'pfs', 'memory', or 'memory+pfs')"
            )
        if l1 is None:
            raise CheckpointError(f"tier={tier!r} requires an L1Store (l1=)")
        _, bd = l1.capture_spmd(
            prefix, ntasks, segment_bytes, payloads=payloads, app_name=app_name
        )
        if drain is not None:
            drain.schedule(prefix)
        elif tier == "memory+pfs":
            from repro.mlck.drain import DrainController

            DrainController(l1, pfs, synchronous=True).schedule(prefix)
        return bd
    if ntasks < 1:
        raise CheckpointError("SPMD checkpoint needs at least one task")
    if payloads is not None and len(payloads) != ntasks:
        raise CheckpointError(
            f"{len(payloads)} payloads for {ntasks} tasks"
        )
    bd = CheckpointBreakdown(kind="spmd", prefix=prefix, ntasks=ntasks)
    obs = get_tracer()
    with obs.span(
        "checkpoint", kind="spmd", prefix=prefix, ntasks=ntasks, app=app_name
    ) as op:
        sizes = []
        shas: List[str] = []
        sha_bytes: List[int] = []
        with obs.span("segment_write", files=ntasks) as sp:
            pfs.begin_phase(IOKind.WRITE_DISTINCT)
            # encode and create serially (deterministic namespace and
            # manifest order), then write the distinct files concurrently
            encoded = []
            for t in range(ntasks):
                fname = task_segment_name(prefix, t)
                pfs.create(fname, virtual=False)
                payload = payloads[t] if payloads is not None else None
                header, pad = _encode_task_file(payload, segment_bytes)
                encoded.append((t, fname, header, pad))
                sizes.append(len(header) + pad)
                # hash the *intended* exact header (the sparse bulk is sized,
                # not stored), so a torn write of the file is caught at restart
                shas.append(sha1_hex(header))
                sha_bytes.append(len(header))

            def write_task(t: int, fname: str, header: bytes, pad: int) -> None:
                pfs.write_at(fname, 0, header, client=t)
                if pad:
                    pfs.write_at(fname, len(header), None, nbytes=pad, client=t)

            if pfs.faults is not None:
                # nth-write fault plans need the deterministic sequence
                for e in encoded:
                    write_task(*e)
            else:
                run_tasks([lambda e=e: write_task(*e) for e in encoded])
            res = pfs.end_phase()
            obs.advance(res.seconds)
            sp.set(nbytes=sum(sizes), seconds=res.seconds)
        bd.segment_seconds = res.seconds
        bd.segment_bytes = sum(sizes)
        write_manifest(
            pfs,
            prefix,
            {
                "kind": "spmd",
                "app_name": app_name,
                "ntasks": ntasks,
                "task_files": [task_segment_name(prefix, t) for t in range(ntasks)],
                "segment_bytes": sizes,
                "task_sha1": shas,
                "task_sha1_bytes": sha_bytes,
            },
        )
        op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
    _publish_breakdown("checkpoint", bd)
    return bd


def spmd_restart(
    pfs: PIOFS,
    prefix: str,
    ntasks: int,
    verify: bool = True,
    tier: str = "pfs",
    l1=None,
) -> Tuple[SPMDRestoredState, RestartBreakdown]:
    """Restore an SPMD checkpoint.  ``ntasks`` must equal the
    checkpointing task count — the defining limitation of conventional
    checkpointing (paper Section 2.2): the application state lives in
    per-task segments, so no reconfiguration is possible.

    With ``verify`` (the default), each task file's header is checked
    against the manifest's recorded SHA-1 before the payload is
    decoded, raising
    :class:`~repro.errors.CheckpointIntegrityError` on corruption.

    ``tier``/``l1`` mirror :func:`~repro.checkpoint.drms.drms_restart`:
    ``"memory"`` serves from surviving L1 replicas only,
    ``"memory+pfs"`` prefers L1 and falls back to the PFS copy."""
    if tier != "pfs":
        if tier not in ("memory", "memory+pfs"):
            raise RestartError(
                f"unknown restart tier {tier!r} "
                "(expected 'pfs', 'memory', or 'memory+pfs')"
            )
        if l1 is None:
            raise RestartError(f"tier={tier!r} requires an L1Store (l1=)")
        l1.sync_with_machine()
        if l1.has(prefix) and l1.validate_generation(prefix).ok:
            return l1.restore_spmd(
                prefix, ntasks, init_seconds=pfs.params.restart_init_s
            )
        if tier == "memory":
            raise MemoryTierError(
                f"generation {prefix!r} cannot be served from L1 "
                "(lost replicas or never captured) and tier='memory' "
                "forbids the PFS fallback"
            )
    manifest = read_manifest(pfs, prefix)
    if manifest.get("kind") != "spmd":
        raise RestartError(
            f"checkpoint {prefix!r} is kind {manifest.get('kind')!r}, not spmd"
        )
    saved = manifest["ntasks"]
    if ntasks != saved:
        raise RestartError(
            f"SPMD checkpoint was taken with {saved} tasks; restart "
            f"requested {ntasks}. Reconfigured restart requires a DRMS "
            "checkpoint."
        )
    bd = RestartBreakdown(kind="spmd", prefix=prefix, ntasks=ntasks)
    bd.other_seconds = pfs.params.restart_init_s
    obs = get_tracer()
    payloads: List[Any] = []
    sizes: List[int] = []
    heads: List[bytes] = []
    with obs.span(
        "restart", kind="spmd", prefix=prefix, ntasks=ntasks,
        checkpoint_ntasks=saved,
    ) as op:
        with obs.span("restart_init") as sp:
            obs.advance(bd.other_seconds)
            sp.set(seconds=bd.other_seconds)
        with obs.span("segment_read", files=ntasks) as sp:
            pfs.begin_phase(IOKind.READ_DISTINCT)
            for t, fname in enumerate(manifest["task_files"]):
                size = pfs.file_size(fname)
                head = pfs.read_at(fname, 0, min(size, DataSegment.header_prefix_bytes()), client=t)
                if size > len(head):
                    pfs.read_virtual(fname, len(head), size - len(head), client=t)
                heads.append(head)
                sizes.append(size)
            res = pfs.end_phase()
            obs.advance(res.seconds)
            sp.set(nbytes=sum(sizes), seconds=res.seconds)
        shas = manifest.get("task_sha1") or []
        sha_bytes = manifest.get("task_sha1_bytes") or []
        with obs.span("validate:task_files", files=len(heads)):
            for t, (fname, head) in enumerate(zip(manifest["task_files"], heads)):
                if verify and t < len(shas):
                    verify_stored_sha1(
                        pfs, fname, shas[t],
                        sha_bytes[t] if t < len(sha_bytes) else None,
                        head=head,
                    )
                payloads.append(_decode_task_file(head))
        bd.segment_seconds = res.seconds
        bd.segment_bytes = sum(sizes)
        op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
    _publish_breakdown("restart", bd)
    return (
        SPMDRestoredState(
            ntasks=ntasks, payloads=payloads, segment_bytes=sizes, manifest=manifest
        ),
        bd,
    )
