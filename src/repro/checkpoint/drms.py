"""DRMS reconfigurable checkpoint and restart.

Checkpoint (paper Section 5): the selected task writes its data segment
first; then each distributed array is written in sequence through
parallel array-section streaming.  Restart: every task loads the single
saved data segment (restoring replicated variables and execution
context), then each array is streamed in under the distribution
appropriate for the *new* number of tasks — which may differ from the
checkpointing task count.

Each step is an I/O phase, so both operations return the same component
breakdown the paper reports in Table 6 (data-segment time/rate, array
time/rate, fixed restart initialization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.checkpoint.format import (
    array_name,
    distribution_to_spec,
    manifest_name,
    np_dtype_name,
    read_manifest,
    segment_name,
    sha1_hex,
    spec_to_distribution,
    write_manifest,
)
from repro.checkpoint.segment import DataSegment
from repro.checkpoint.validate import verify_stored_sha1
from repro.errors import (
    CheckpointError,
    CheckpointIntegrityError,
    MemoryTierError,
    RestartError,
)
from repro.obs import get_tracer
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.streaming.order import stream_order_bytes
from repro.streaming.parallel import stream_in_parallel, stream_out_parallel
from repro.streaming.streams import PFSSink, PFSSource

__all__ = [
    "CheckpointBreakdown",
    "RestartBreakdown",
    "RestoredState",
    "drms_checkpoint",
    "drms_restart",
]

_MB = 1e6  # the paper reports decimal MB/s


def _publish_breakdown(op: str, bd: "CheckpointBreakdown") -> None:
    """Feed one operation's component breakdown into the active metrics
    registry under ``<op>.<kind>.*`` (e.g. ``checkpoint.drms.segment.seconds``).
    These are the series :mod:`repro.perfmodel` benchmarks read back."""
    m = get_tracer().metrics
    root = f"{op}.{bd.kind}"
    m.counter(f"{root}.count").inc()
    m.counter(f"{root}.segment.seconds").inc(bd.segment_seconds)
    m.counter(f"{root}.segment.bytes").inc(bd.segment_bytes)
    m.counter(f"{root}.arrays.seconds").inc(bd.arrays_seconds)
    m.counter(f"{root}.arrays.bytes").inc(bd.arrays_bytes)
    other = getattr(bd, "other_seconds", None)
    if other is not None:
        m.counter(f"{root}.other.seconds").inc(other)
    m.counter(f"{root}.total.seconds").inc(bd.total_seconds)
    m.counter(f"{root}.total.bytes").inc(bd.total_bytes)


@dataclass
class CheckpointBreakdown:
    """Component timing/size of one checkpoint (Table 6, 'Checkpoint')."""

    kind: str
    prefix: str
    ntasks: int
    segment_seconds: float = 0.0
    segment_bytes: int = 0
    arrays_seconds: float = 0.0
    arrays_bytes: int = 0
    per_array: List[Tuple[str, float, int]] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.segment_seconds + self.arrays_seconds

    @property
    def total_bytes(self) -> int:
        return self.segment_bytes + self.arrays_bytes

    @property
    def rate_mbps(self) -> float:
        return self.total_bytes / _MB / self.total_seconds if self.total_seconds else 0.0

    @property
    def segment_rate_mbps(self) -> float:
        return (
            self.segment_bytes / _MB / self.segment_seconds
            if self.segment_seconds
            else 0.0
        )

    @property
    def arrays_rate_mbps(self) -> float:
        return (
            self.arrays_bytes / _MB / self.arrays_seconds if self.arrays_seconds else 0.0
        )


@dataclass
class RestartBreakdown(CheckpointBreakdown):
    """Restart adds the fixed initialization (text-segment load) the
    paper shows as the 'other' band of Figure 7."""

    other_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.segment_seconds + self.arrays_seconds + self.other_seconds


@dataclass
class RestoredState:
    """Everything a restarted application needs."""

    segment: DataSegment
    arrays: Dict[str, DistributedArray]
    ntasks: int
    checkpoint_ntasks: int
    manifest: Dict

    @property
    def delta(self) -> int:
        """New minus checkpointing task count (the API's ``delta``:
        nonzero means the arrays needed a new distribution)."""
        return self.ntasks - self.checkpoint_ntasks


def drms_checkpoint(
    pfs: PIOFS,
    prefix: str,
    segment: DataSegment,
    arrays: Sequence[DistributedArray],
    order: str = "F",
    io_tasks: Optional[int] = None,
    target_bytes: int = 1 << 20,
    app_name: str = "",
    concurrency: str = "threads",
    tier: str = "pfs",
    l1=None,
    drain=None,
) -> CheckpointBreakdown:
    """Write a reconfigurable checkpoint under ``prefix``.

    ``concurrency`` selects the parstream executor (``"threads"`` runs
    the P I/O tasks on a thread pool, ``"vectorized"`` the same bulk
    pipeline inline without a pool, ``"serial"`` the deterministic
    per-piece round-robin loop); output bytes are identical in every
    engine.

    ``tier`` selects the checkpoint store: ``"pfs"`` (default) writes
    the PFS directly; ``"memory"`` captures into the in-memory L1 store
    ``l1`` (an :class:`~repro.mlck.store.L1Store`) only;
    ``"memory+pfs"`` captures into L1 and promotes to the PFS through a
    drain — the given :class:`~repro.mlck.drain.DrainController`, or an
    inline synchronous drain when none is supplied.  Memory tiers
    return the *capture* breakdown (kind ``mlck-l1``): that is what the
    application blocks on."""
    if tier != "pfs":
        if tier not in ("memory", "memory+pfs"):
            raise CheckpointError(
                f"unknown checkpoint tier {tier!r} "
                "(expected 'pfs', 'memory', or 'memory+pfs')"
            )
        if l1 is None:
            raise CheckpointError(f"tier={tier!r} requires an L1Store (l1=)")
        _, bd = l1.capture_drms(
            prefix, segment, arrays, order=order, app_name=app_name
        )
        if drain is not None:
            drain.schedule(prefix)
        elif tier == "memory+pfs":
            from repro.mlck.drain import DrainController

            DrainController(
                l1, pfs, synchronous=True,
                io_tasks=io_tasks, target_bytes=target_bytes,
            ).schedule(prefix)
        return bd
    names = {a.name for a in arrays}
    if len(names) != len(arrays):
        raise CheckpointError("distributed array names must be unique")
    ntasks = arrays[0].ntasks if arrays else 1
    for a in arrays:
        if a.ntasks != ntasks:
            raise CheckpointError(
                f"array {a.name!r} has {a.ntasks} tasks; expected {ntasks}"
            )
    bd = CheckpointBreakdown(kind="drms", prefix=prefix, ntasks=ntasks)
    obs = get_tracer()

    with obs.span(
        "checkpoint", kind="drms", prefix=prefix, ntasks=ntasks, app=app_name
    ) as op:
        # Phase 1: the representative task writes its data segment.
        header, pad = segment.serialize()
        seg = segment_name(prefix)
        pfs.create(seg, virtual=False)
        with obs.span("segment_write", file=seg) as sp:
            pfs.begin_phase(IOKind.WRITE_SERIAL)
            pfs.write_at(seg, 0, header, client=0)
            if pad:
                # The bulk segment components are sized payloads (see
                # DataSegment): a sparse span past the exact header.
                pfs.write_at(seg, len(header), None, nbytes=pad, client=0)
            res = pfs.end_phase()
            obs.advance(res.seconds)
            sp.set(nbytes=len(header) + pad, seconds=res.seconds)
        bd.segment_seconds = res.seconds
        bd.segment_bytes = len(header) + pad

        # Phase 2..N+1: each distributed array in sequence, via parstream.
        manifest_arrays = []
        for a in arrays:
            fname = array_name(prefix, a.name)
            sink = PFSSink(pfs, fname, virtual=not a.store_data, create=True)
            with obs.span(f"parstream:{a.name}", file=fname) as sp:
                pfs.begin_phase(IOKind.WRITE_PARALLEL)
                stats = stream_out_parallel(
                    a, sink, P=io_tasks, order=order, target_bytes=target_bytes,
                    concurrency=concurrency,
                )
                res = pfs.end_phase()
                obs.advance(res.seconds)
                sp.set(
                    nbytes=stats.bytes_streamed,
                    pieces=stats.pieces,
                    redistribution_bytes=stats.redistribution_bytes,
                    seconds=res.seconds,
                )
            bd.arrays_seconds += res.seconds
            bd.arrays_bytes += stats.bytes_streamed
            bd.per_array.append((a.name, res.seconds, stats.bytes_streamed))
            # Integrity record: SHA-1 over the *intended* canonical stream
            # bytes (not the file content), so a torn or short write that
            # corrupted the stored file is caught at restart.
            sha = (
                sha1_hex(stream_order_bytes(a.to_global(), order))
                if a.store_data
                else None
            )
            manifest_arrays.append(
                {
                    "name": a.name,
                    "shape": list(a.shape),
                    "dtype": np_dtype_name(a.dtype),
                    "file": fname,
                    "nbytes": stats.bytes_streamed,
                    "sha1": sha,
                    "virtual": not a.store_data,
                    "distribution": distribution_to_spec(a.distribution),
                }
            )

        write_manifest(
            pfs,
            prefix,
            {
                "kind": "drms",
                "app_name": app_name,
                "ntasks": ntasks,
                "order": order,
                "segment_file": seg,
                "segment_bytes": bd.segment_bytes,
                "segment_sha1": sha1_hex(header),
                "segment_sha1_bytes": len(header),
                "arrays": manifest_arrays,
            },
        )
        op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
    _publish_breakdown("checkpoint", bd)
    return bd


def drms_restart(
    pfs: PIOFS,
    prefix: str,
    ntasks: int,
    order: Optional[str] = None,
    io_tasks: Optional[int] = None,
    target_bytes: int = 1 << 20,
    distribution_overrides: Optional[Dict[str, object]] = None,
    verify: bool = True,
    concurrency: str = "threads",
    tier: str = "pfs",
    l1=None,
) -> Tuple[RestoredState, RestartBreakdown]:
    """Restore a DRMS checkpoint onto ``ntasks`` tasks (any count >= 1).

    ``distribution_overrides`` maps array names to explicit
    :class:`~repro.arrays.distributions.Distribution` objects, for
    callers that specify their own post-reconfiguration distributions
    (the Fig. 1 ``drms_adjust``/``drms_distribute`` path); everything
    else is auto-adjusted from the stored spec.

    With ``verify`` (the default) the manifest's SHA-1 checksums are
    checked — the segment header after its read phase, each stored
    array file before it is streamed in — raising
    :class:`~repro.errors.CheckpointIntegrityError` on any mismatch or
    size disagreement, *before* corrupt data reaches the application.
    Verification reads are untimed (they model a background scrub, not
    the restart's I/O phases).

    ``tier``/``l1`` extend restart to the multi-level store:
    ``"memory"`` restores from surviving L1 replicas of ``l1`` and
    raises :class:`~repro.errors.MemoryTierError` when they cannot
    serve; ``"memory+pfs"`` prefers L1 but falls back to the PFS copy
    when the L1 generation is lost or invalid.  Both charge the fixed
    restart initialization exactly like the PFS path.
    """
    if tier != "pfs":
        if tier not in ("memory", "memory+pfs"):
            raise RestartError(
                f"unknown restart tier {tier!r} "
                "(expected 'pfs', 'memory', or 'memory+pfs')"
            )
        if l1 is None:
            raise RestartError(f"tier={tier!r} requires an L1Store (l1=)")
        l1.sync_with_machine()
        if l1.has(prefix) and l1.validate_generation(prefix).ok:
            return l1.restore_drms(
                prefix,
                ntasks,
                order=order,
                distribution_overrides=distribution_overrides,
                init_seconds=pfs.params.restart_init_s,
            )
        if tier == "memory":
            raise MemoryTierError(
                f"generation {prefix!r} cannot be served from L1 "
                "(lost replicas or never captured) and tier='memory' "
                "forbids the PFS fallback"
            )
        # tier == "memory+pfs": fall through to the PFS copy
    manifest = read_manifest(pfs, prefix)
    if manifest.get("kind") != "drms":
        raise RestartError(
            f"checkpoint {prefix!r} is kind {manifest.get('kind')!r}; "
            "a reconfigured restart needs a DRMS checkpoint"
        )
    if ntasks < 1:
        raise RestartError(f"cannot restart on {ntasks} tasks")
    order = order or manifest.get("order", "F")
    bd = RestartBreakdown(kind="drms", prefix=prefix, ntasks=ntasks)
    bd.other_seconds = pfs.params.restart_init_s
    obs = get_tracer()

    with obs.span(
        "restart",
        kind="drms",
        prefix=prefix,
        ntasks=ntasks,
        checkpoint_ntasks=manifest["ntasks"],
    ) as op:
        # Fixed initialization (text-segment load) happens before any
        # checkpoint I/O; its simulated cost is a machine parameter.
        with obs.span("restart_init") as sp:
            obs.advance(bd.other_seconds)
            sp.set(seconds=bd.other_seconds)

        # Phase 1: every task reads the single saved data segment.
        seg = manifest["segment_file"]
        seg_size = pfs.file_size(seg)
        with obs.span("segment_read", file=seg) as sp:
            pfs.begin_phase(IOKind.READ_SHARED)
            head = pfs.read_at(
                seg, 0, min(seg_size, DataSegment.header_prefix_bytes()), client=0
            )
            if seg_size > len(head):
                pfs.read_virtual(seg, len(head), seg_size - len(head), client=0)
            for t in range(1, ntasks):
                pfs.read_virtual(seg, 0, seg_size, client=t)
            res = pfs.end_phase()
            obs.advance(res.seconds)
            sp.set(nbytes=seg_size * ntasks, seconds=res.seconds)
        if verify:
            with obs.span("validate:segment", file=seg):
                verify_stored_sha1(
                    pfs,
                    seg,
                    manifest.get("segment_sha1"),
                    manifest.get("segment_sha1_bytes"),
                    head=head,
                )
        segment = DataSegment.deserialize(head)
        bd.segment_seconds = res.seconds
        bd.segment_bytes = seg_size * ntasks  # every task reads the file

        # Phase 2..N+1: arrays under the (possibly adjusted) distributions.
        arrays: Dict[str, DistributedArray] = {}
        overrides = distribution_overrides or {}
        for spec in manifest["arrays"]:
            name = spec["name"]
            dist = overrides.get(name) or spec_to_distribution(
                spec["distribution"], ntasks=ntasks
            )
            if dist.ntasks != ntasks:
                raise RestartError(
                    f"override distribution for {name!r} targets {dist.ntasks} "
                    f"tasks; restart uses {ntasks}"
                )
            arr = DistributedArray(
                name,
                spec["shape"],
                np.dtype(spec["dtype"]),
                dist,
                store_data=not spec["virtual"],
            )
            if verify and not spec["virtual"]:
                with obs.span(f"validate:{name}", file=spec["file"]):
                    expected = spec.get("nbytes")
                    if (
                        expected is not None
                        and pfs.file_size(spec["file"]) != expected
                    ):
                        raise CheckpointIntegrityError(
                            f"array file {spec['file']!r} is "
                            f"{pfs.file_size(spec['file'])} bytes; manifest "
                            f"records {expected} (torn or short write)"
                        )
                    verify_stored_sha1(pfs, spec["file"], spec.get("sha1"), expected)
            source = PFSSource(pfs, spec["file"])
            with obs.span(f"parstream:{name}", file=spec["file"]) as sp:
                pfs.begin_phase(IOKind.READ_PARALLEL)
                stats = stream_in_parallel(
                    arr, source, P=io_tasks, order=order, target_bytes=target_bytes,
                    concurrency=concurrency,
                )
                res = pfs.end_phase()
                obs.advance(res.seconds)
                sp.set(
                    nbytes=stats.bytes_streamed,
                    pieces=stats.pieces,
                    redistribution_bytes=stats.redistribution_bytes,
                    seconds=res.seconds,
                )
            bd.arrays_seconds += res.seconds
            bd.arrays_bytes += stats.bytes_streamed
            bd.per_array.append((name, res.seconds, stats.bytes_streamed))
            arrays[name] = arr
        op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)

    _publish_breakdown("restart", bd)
    state = RestoredState(
        segment=segment,
        arrays=arrays,
        ntasks=ntasks,
        checkpoint_ntasks=manifest["ntasks"],
        manifest=manifest,
    )
    return state, bd
