"""On-"disk" checkpoint formats: names, manifests, distribution specs.

A checkpoint with prefix ``P`` consists of:

* ``P.manifest``           — JSON metadata (this module);
* DRMS kind: ``P.segment`` — one data segment, plus ``P.array.<name>``
  per distributed array (distribution-independent streams);
* SPMD kind: ``P.task<i>`` — one data segment per task.

Manifests record enough to restart *without* the original program
object: the checkpoint kind, task count, stream order, and — per array —
shape, dtype, and a declarative distribution spec that
:func:`spec_to_distribution` can re-instantiate and ``adjust`` to a new
task count.  Different prefixes coexist, so an application can keep
multiple checkpointed states concurrently (paper Section 3).

Crash consistency: a manifest is committed in **two phases** — the JSON
is written to ``<prefix>.manifest.tmp``, read back and validated, and
only then atomically renamed to ``<prefix>.manifest``.  Since the
manifest is written last and its presence marks a complete state, a
crash (or injected I/O fault) at *any* point of a checkpoint leaves
either the previous committed manifest or none — never a zero-byte or
half-written one.  Format version 3 additionally records SHA-1
checksums (segment header, per-array stream bytes) that restart and
:func:`~repro.checkpoint.validate.validate_checkpoint` verify.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.arrays.distributions import (
    AxisDistribution,
    Block,
    BlockCyclic,
    Cyclic,
    Distribution,
    GenBlock,
    Indexed,
    Replicated,
)
from repro.arrays.ranges import Range
from repro.errors import CheckpointError, CheckpointIntegrityError
from repro.obs import get_tracer
from repro.pfs.piofs import PIOFS

__all__ = [
    "CHECKPOINT_VERSION",
    "manifest_name",
    "manifest_tmp_name",
    "segment_name",
    "array_name",
    "task_segment_name",
    "axis_to_spec",
    "spec_to_axis",
    "distribution_to_spec",
    "spec_to_distribution",
    "sha1_hex",
    "write_manifest",
    "read_manifest",
]

CHECKPOINT_VERSION = 3


def manifest_name(prefix: str) -> str:
    """Manifest file name for a checkpoint prefix."""
    return f"{prefix}.manifest"


def manifest_tmp_name(prefix: str) -> str:
    """Staging name of an uncommitted manifest (phase one of the
    two-phase commit); never matches the ``.manifest`` suffix scans."""
    return f"{prefix}.manifest.tmp"


def segment_name(prefix: str) -> str:
    """Data-segment file name for a DRMS checkpoint."""
    return f"{prefix}.segment"


def array_name(prefix: str, array: str) -> str:
    """Array stream file name for a DRMS checkpoint."""
    return f"{prefix}.array.{array}"


def task_segment_name(prefix: str, task: int) -> str:
    """Per-task segment file name for an SPMD checkpoint."""
    return f"{prefix}.task{task}"


# -- distribution specs ------------------------------------------------------


def _range_to_spec(r: Range) -> Any:
    if r.is_empty:
        return {"kind": "empty"}
    if r.is_regular:
        return {"kind": "regular", "lo": r.first, "hi": r.last, "step": r.step}
    return {"kind": "indexed", "indices": [int(i) for i in r.indices()]}


def _spec_to_range(spec: Dict[str, Any]) -> Range:
    kind = spec["kind"]
    if kind == "empty":
        return Range.empty()
    if kind == "regular":
        return Range.regular(spec["lo"], spec["hi"], spec["step"])
    if kind == "indexed":
        return Range(spec["indices"])
    raise CheckpointError(f"unknown range spec kind {kind!r}")


def axis_to_spec(ax: AxisDistribution) -> Dict[str, Any]:
    """Serialize one axis distribution to a JSON-able spec."""
    if isinstance(ax, Block):
        return {"kind": "block"}
    if isinstance(ax, Cyclic):
        return {"kind": "cyclic"}
    if isinstance(ax, BlockCyclic):
        return {"kind": "block_cyclic", "block": ax.block}
    if isinstance(ax, GenBlock):
        return {"kind": "gen_block", "sizes": list(ax.sizes)}
    if isinstance(ax, Indexed):
        return {"kind": "indexed", "ranges": [_range_to_spec(r) for r in ax.ranges]}
    if isinstance(ax, Replicated):
        return {"kind": "replicated"}
    raise CheckpointError(f"cannot serialize axis distribution {ax!r}")


def spec_to_axis(spec: Dict[str, Any]) -> AxisDistribution:
    """Inverse of axis_to_spec."""
    kind = spec["kind"]
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic()
    if kind == "block_cyclic":
        return BlockCyclic(block=int(spec["block"]))
    if kind == "gen_block":
        return GenBlock(spec["sizes"])
    if kind == "indexed":
        return Indexed([_spec_to_range(r) for r in spec["ranges"]])
    if kind == "replicated":
        return Replicated()
    raise CheckpointError(f"unknown axis spec kind {kind!r}")


def _slice_to_spec(s) -> Any:
    return [_range_to_spec(r) for r in s.ranges]


def _spec_to_slice(spec) -> Any:
    from repro.arrays.slices import Slice

    return Slice([_spec_to_range(r) for r in spec])


def distribution_to_spec(d: Distribution) -> Dict[str, Any]:
    """Serialize a full Distribution to a JSON-able spec."""
    out = {
        "shape": list(d.shape),
        "axes": [axis_to_spec(a) for a in d.axes],
        "ntasks": d.ntasks,
        "grid": list(d.grid),
        "shadow": list(d.shadow),
    }
    if getattr(d, "mapped_overridden", False):
        out["mapped"] = [_slice_to_spec(d.mapped(t)) for t in range(d.ntasks)]
    return out


def spec_to_distribution(
    spec: Dict[str, Any], ntasks: Optional[int] = None
) -> Distribution:
    """Re-instantiate a distribution; with ``ntasks`` given and different
    from the stored count, the distribution is *adjusted* to the new
    task count (the ``drms_adjust`` path of a reconfigured restart)."""
    mapped = spec.get("mapped")
    stored = Distribution(
        spec["shape"],
        [spec_to_axis(a) for a in spec["axes"]],
        spec["ntasks"],
        grid=spec.get("grid"),
        shadow=spec.get("shadow"),
        mapped=[_spec_to_slice(m) for m in mapped] if mapped else None,
    )
    if ntasks is None or ntasks == stored.ntasks:
        return stored
    # A different task count invalidates explicit mapped overrides;
    # adjust() re-derives a shadow-based analogue (the application may
    # supply its own irregular distribution via drms_distribute).
    return stored.adjust(ntasks)


# -- manifests ------------------------------------------------------------------


def sha1_hex(data: bytes) -> str:
    """SHA-1 hex digest — the checksum recorded in manifests (matching
    the content hashing of :mod:`repro.checkpoint.incremental`)."""
    return hashlib.sha1(data).hexdigest()


def write_manifest(pfs: PIOFS, prefix: str, manifest: Dict[str, Any]) -> None:
    """Commit a checkpoint manifest atomically (stamps the format
    version).

    Two-phase protocol: the JSON is staged to ``<prefix>.manifest.tmp``,
    read back and compared byte-for-byte (catching torn and short
    writes), then renamed onto the final ``.manifest`` name.  A crash —
    or an injected I/O fault — anywhere before the rename leaves no
    ``.manifest`` file at all, so the half-written state is invisible to
    :func:`~repro.checkpoint.rotation.latest_checkpoint`; the stale
    ``.tmp`` still reserves the generation number against reuse.
    """
    manifest = dict(manifest)
    manifest["version"] = CHECKPOINT_VERSION
    data = json.dumps(manifest, sort_keys=True).encode()
    name = manifest_name(prefix)
    tmp = manifest_tmp_name(prefix)
    with get_tracer().span("manifest_commit", file=name, nbytes=len(data)):
        pfs.create(tmp, virtual=False)
        pfs.write_at(tmp, 0, data)
        back = pfs.read_at(tmp, 0, pfs.file_size(tmp))
        if back != data:
            raise CheckpointIntegrityError(
                f"manifest {name!r} failed write validation: staged "
                f"{len(back)} bytes, expected {len(data)} (torn write?)"
            )
        pfs.rename(tmp, name)


def read_manifest(pfs: PIOFS, prefix: str) -> Dict[str, Any]:
    """Read and version-check a checkpoint manifest."""
    name = manifest_name(prefix)
    if not pfs.exists(name):
        raise CheckpointError(f"no checkpoint manifest {name!r}")
    raw = pfs.read_at(name, 0, pfs.file_size(name))
    try:
        manifest = json.loads(raw.decode())
    except Exception as exc:
        raise CheckpointError(f"corrupt manifest {name!r}: {exc}") from exc
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"manifest {name!r} has version {version}; this library "
            f"reads version {CHECKPOINT_VERSION}.  Older states cannot "
            "be read in place: restart them under the library version "
            "that wrote them, take a fresh checkpoint, and migrate it "
            "with repro.checkpoint.archive.copy_checkpoint (see "
            "DESIGN.md, 'Checkpoint on-disk format')."
        )
    return manifest


def np_dtype_name(dtype) -> str:
    return np.dtype(dtype).str  # endianness-explicit, e.g. '<f8'
