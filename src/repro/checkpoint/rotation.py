"""Rotating checkpoint prefixes: multiple concurrent states, safely.

The paper (Section 3): "A different prefix can be used each time,
allowing the application to maintain multiple checkpointed states
concurrently ... If multiple checkpointed states are available, the
application can be restarted from any of them."

Beyond flexibility, rotation is a *correctness* requirement: a failure
striking mid-checkpoint must not destroy the only good state, so a new
checkpoint must never overwrite its predecessor in place.
:class:`CheckpointRotation` hands out monotonically numbered prefixes
(``base.000001``, ``base.000002``, ...), identifies the newest *complete*
state (a manifest is written last, so its presence marks completion),
and prunes states beyond a retention budget.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.checkpoint.archive import delete_checkpoint
from repro.checkpoint.format import manifest_name, read_manifest
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS

__all__ = ["CheckpointRotation", "latest_checkpoint", "generations"]

_GEN_RE = re.compile(r"^(?P<base>.+)\.(?P<gen>\d{6})$")


def generations(pfs: PIOFS, base: str) -> List[str]:
    """Complete checkpoint prefixes under ``base``, oldest first.  Only
    states with a readable manifest count (the manifest is written last,
    so a half-written state is invisible here)."""
    out = []
    suffix = ".manifest"
    for name in pfs.listdir(base + "."):
        if not name.endswith(suffix):
            continue
        prefix = name[: -len(suffix)]
        m = _GEN_RE.match(prefix)
        if m is None or m.group("base") != base:
            continue
        try:
            read_manifest(pfs, prefix)
        except CheckpointError:
            continue
        out.append(prefix)
    return sorted(out, key=lambda p: int(_GEN_RE.match(p).group("gen")))


def latest_checkpoint(pfs: PIOFS, base: str) -> Optional[str]:
    """The newest complete state under ``base`` (None when none exist)."""
    gens = generations(pfs, base)
    return gens[-1] if gens else None


class CheckpointRotation:
    """Prefix allocator + retention policy for one application."""

    def __init__(self, pfs: PIOFS, base: str, keep: int = 2):
        if keep < 1:
            raise CheckpointError("retention must keep at least one state")
        if _GEN_RE.match(base):
            raise CheckpointError(
                f"base prefix {base!r} already looks like a generation"
            )
        self.pfs = pfs
        self.base = base
        self.keep = keep
        #: generations an in-flight drain still depends on; prune()
        #: never deletes these (see repro.mlck.drain)
        self._pinned: set = set()

    def pin(self, prefix: str) -> None:
        """Protect ``prefix`` from pruning until :meth:`unpin`.  An
        asynchronous L1->L2 drain pins the newest durable generation
        while it runs: until the draining generation commits, that state
        is the only durable fallback and must survive retention."""
        self._pinned.add(prefix)

    def unpin(self, prefix: str) -> None:
        """Release a :meth:`pin`; unknown prefixes are ignored."""
        self._pinned.discard(prefix)

    @property
    def pinned(self) -> frozenset:
        return frozenset(self._pinned)

    def next_prefix(self) -> str:
        """A fresh prefix, strictly newer than every existing state —
        including incomplete ones, whose numbers must not be reused."""
        newest = 0
        pat = re.compile(re.escape(self.base) + r"\.(?P<gen>\d{6})(\..*)?$")
        for name in self.pfs.listdir(self.base + "."):
            m = pat.match(name)
            if m:
                newest = max(newest, int(m.group("gen")))
        return f"{self.base}.{newest + 1:06d}"

    def latest(self) -> Optional[str]:
        """Newest complete state (what a restart should use)."""
        return latest_checkpoint(self.pfs, self.base)

    def prune(self) -> List[str]:
        """Delete complete states beyond the retention budget (oldest
        first); never touches the newest ones, nor any generation pinned
        by an in-flight drain (a pinned state is the newest durable
        fallback until the draining generation supersedes it).  Returns
        what was deleted."""
        gens = generations(self.pfs, self.base)
        doomed = [
            p
            for p in gens[: max(0, len(gens) - self.keep)]
            if p not in self._pinned
        ]
        for prefix in doomed:
            delete_checkpoint(self.pfs, prefix)
        return doomed

    def commit(self, prefix: str) -> List[str]:
        """Called after a checkpoint completes under ``prefix``: applies
        retention and returns the pruned prefixes."""
        if latest_checkpoint(self.pfs, self.base) != prefix:
            raise CheckpointError(
                f"{prefix!r} is not the newest complete state under "
                f"{self.base!r}; refusing to prune"
            )
        return self.prune()
