"""Checkpoint/restart engines.

Two checkpointing disciplines, matching the paper's comparison:

* **DRMS checkpointing** (:mod:`repro.checkpoint.drms`): save the data
  segment of *one* representative task plus each distributed array in a
  distribution-independent stream.  State size is independent of the
  number of tasks, and restart may use a different task count.
* **SPMD checkpointing** (:mod:`repro.checkpoint.spmd`): every task
  saves its whole data segment (the conventional scheme of refs
  [6, 10, 18]).  State grows linearly with tasks, and restart requires
  exactly the original task count.
"""

from repro.checkpoint.segment import SegmentProfile, ExecutionContext, DataSegment
from repro.checkpoint.format import (
    CHECKPOINT_VERSION,
    distribution_to_spec,
    spec_to_distribution,
    manifest_name,
    manifest_tmp_name,
    segment_name,
    array_name,
    task_segment_name,
    sha1_hex,
)
from repro.checkpoint.validate import (
    ValidationReport,
    validate_checkpoint,
    verify_checkpoint,
    verify_stored_sha1,
)
from repro.checkpoint.recover import (
    RecoveryDecision,
    restart_candidates,
    restart_latest_valid,
    select_restart_state,
)
from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    RestoredState,
    drms_checkpoint,
    drms_restart,
)
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.checkpoint.restart import checkpoint_kind, list_checkpoints, saved_state_bytes
from repro.checkpoint.incremental import IncrementalCheckpointer, excluded_segment_bytes
from repro.checkpoint.archive import checkpoint_files, copy_checkpoint, delete_checkpoint
from repro.checkpoint.rotation import CheckpointRotation, generations, latest_checkpoint

__all__ = [
    "SegmentProfile",
    "ExecutionContext",
    "DataSegment",
    "CHECKPOINT_VERSION",
    "distribution_to_spec",
    "spec_to_distribution",
    "manifest_name",
    "manifest_tmp_name",
    "segment_name",
    "array_name",
    "task_segment_name",
    "sha1_hex",
    "ValidationReport",
    "validate_checkpoint",
    "verify_checkpoint",
    "verify_stored_sha1",
    "RecoveryDecision",
    "restart_candidates",
    "restart_latest_valid",
    "select_restart_state",
    "CheckpointBreakdown",
    "RestartBreakdown",
    "RestoredState",
    "drms_checkpoint",
    "drms_restart",
    "spmd_checkpoint",
    "spmd_restart",
    "checkpoint_kind",
    "list_checkpoints",
    "saved_state_bytes",
    "IncrementalCheckpointer",
    "excluded_segment_bytes",
    "checkpoint_files",
    "copy_checkpoint",
    "delete_checkpoint",
    "CheckpointRotation",
    "generations",
    "latest_checkpoint",
]
