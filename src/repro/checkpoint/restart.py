"""Checkpoint-set utilities shared by both checkpoint kinds."""

from __future__ import annotations

from typing import Dict, List

from repro.checkpoint.format import manifest_name, read_manifest
from repro.errors import CheckpointError
from repro.pfs.piofs import PIOFS

__all__ = ["checkpoint_kind", "list_checkpoints", "saved_state_bytes"]

_MANIFEST_SUFFIX = ".manifest"


def checkpoint_kind(pfs: PIOFS, prefix: str) -> str:
    """'drms' or 'spmd'."""
    return read_manifest(pfs, prefix)["kind"]


def list_checkpoints(pfs: PIOFS) -> List[str]:
    """All checkpoint prefixes present in the file system.  Multiple
    prefixes coexist, so an application can keep several checkpointed
    states and restart from any of them (paper Section 3)."""
    return sorted(
        n[: -len(_MANIFEST_SUFFIX)]
        for n in pfs.listdir()
        if n.endswith(_MANIFEST_SUFFIX)
    )


def saved_state_bytes(pfs: PIOFS, prefix: str) -> Dict[str, int]:
    """Size of every component of a checkpointed state (the Table 3
    quantities).  Keys: ``total``, plus ``segment``/``arrays`` for DRMS
    checkpoints or ``per_task``/``ntasks`` for SPMD ones.  The manifest
    itself is metadata and excluded, matching the paper's accounting of
    "all files necessary to capture the state"."""
    manifest = read_manifest(pfs, prefix)
    out: Dict[str, int] = {}
    if manifest["kind"] == "drms":
        seg = pfs.file_size(manifest["segment_file"])
        arrays = sum(pfs.file_size(a["file"]) for a in manifest["arrays"])
        out["segment"] = seg
        out["arrays"] = arrays
        out["total"] = seg + arrays
    elif manifest["kind"] == "spmd":
        sizes = [pfs.file_size(f) for f in manifest["task_files"]]
        out["ntasks"] = len(sizes)
        out["per_task"] = sizes[0] if sizes else 0
        out["total"] = sum(sizes)
    else:
        raise CheckpointError(f"unknown checkpoint kind {manifest['kind']!r}")
    return out
