"""Checkpoint archiving and migration between file systems.

The paper's abstract: "the reconfigurable checkpointed states can be
migrated from one parallel system to another even if they do not have
the same number of processors."  Migration means physically moving the
checkpoint file set; this module copies a complete checkpointed state
(either kind) between two PIOFS instances — e.g., from a machine's
parallel file system to an archive server and on to a different
machine — preserving every file byte-for-byte, so a reconfigured
restart on the destination behaves exactly like a local one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checkpoint.format import manifest_name, read_manifest
from repro.errors import CheckpointError

from repro.pfs.piofs import PIOFS

__all__ = ["checkpoint_files", "copy_checkpoint", "delete_checkpoint"]

_COPY_CHUNK = 4 << 20


def checkpoint_files(
    pfs: PIOFS, prefix: str, _seen: Optional[set] = None
) -> List[str]:
    """Every file belonging to the checkpointed state under ``prefix``
    (manifest included).  A chain manifest whose base/delta references
    loop back on themselves (a corrupt or hostile manifest) raises
    :class:`~repro.errors.CheckpointError` instead of recursing
    forever."""
    seen = _seen if _seen is not None else set()
    if prefix in seen:
        raise CheckpointError(
            f"checkpoint chain cycle: {prefix!r} references itself"
        )
    seen.add(prefix)
    manifest = read_manifest(pfs, prefix)
    files = [manifest_name(prefix)]
    kind = manifest.get("kind")
    if kind == "drms":
        files.append(manifest["segment_file"])
        files.extend(a["file"] for a in manifest["arrays"])
    elif kind == "spmd":
        files.extend(manifest["task_files"])
    elif kind == "drms-chain":
        files.extend(checkpoint_files(pfs, manifest["base"], _seen=seen))
        for delta in manifest["deltas"]:
            files.extend(checkpoint_files(pfs, delta, _seen=seen))
    elif kind == "drms-delta":
        files.append(manifest["segment_file"])
        files.extend(a["file"] for a in manifest["arrays"])
    else:
        raise CheckpointError(f"unknown checkpoint kind {kind!r}")
    # preserve order, drop duplicates (chains share the base)
    seen = set()
    out = []
    for f in files:
        if f not in seen:
            seen.add(f)
            out.append(f)
    return out


def copy_checkpoint(src: PIOFS, dst: PIOFS, prefix: str) -> Dict[str, int]:
    """Copy a complete checkpointed state from ``src`` to ``dst``.

    Virtual files stay virtual and sparse tails stay sparse (sizes
    preserved without materializing the content-free spans); stored
    bytes are copied exactly.  Returns per-file byte counts.
    """
    copied: Dict[str, int] = {}
    for name in checkpoint_files(src, prefix):
        f = src.open(name)
        dst.create(name, virtual=f.virtual, overwrite=True)
        stored = 0 if f.virtual else f.stored_bytes
        pos = 0
        while pos < stored:
            chunk = src.read_at(name, pos, min(_COPY_CHUNK, stored - pos))
            dst.write_at(name, pos, chunk)
            pos += len(chunk)
        if f.size > stored:
            dst.write_at(name, stored, None, nbytes=f.size - stored)
        copied[name] = f.size
    return copied


def delete_checkpoint(pfs: PIOFS, prefix: str) -> int:
    """Remove every file of a checkpointed state; returns bytes freed."""
    freed = 0
    for name in checkpoint_files(pfs, prefix):
        freed += pfs.file_size(name)
        pfs.unlink(name)
    return freed
