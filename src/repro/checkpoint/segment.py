"""The task data-segment model.

The paper includes "the task stack, heap, static data, and register
context" in the data segment and quantifies three byte components per
task (Table 4):

* *local sections*: storage for the mapped sections of distributed
  arrays (fixed at compile time for the minimum task count);
* *system related*: ~33 MB of runtime-library storage, mostly
  message-passing buffers, identical across applications;
* *private/replicated*: everything else — replicated variables plus
  task-private scratch.

For checkpointing we additionally capture the *execution context*: the
SOP at which the checkpoint was taken, the iteration counter, and the
SOQ control variables — what lets restart resume "from the
drms_reconfig_checkpoint call".  Replicated variables and the context
serialize exactly (they are restored on restart); the bulk byte
components are carried as sized payloads so saved-state sizes and I/O
times match the paper without gigabytes of literal content.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import CheckpointError

__all__ = ["SegmentProfile", "ExecutionContext", "DataSegment", "SYSTEM_SEGMENT_BYTES"]

#: the paper's "System related" component (Table 4): ~33 MB of library
#: state, dominated by message-passing buffers, same for BT, LU, and SP.
SYSTEM_SEGMENT_BYTES = 34_972_228


@dataclass(frozen=True)
class SegmentProfile:
    """Byte sizes of the data-segment components of one task."""

    local_section_bytes: int
    system_bytes: int
    private_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.local_section_bytes + self.system_bytes + self.private_bytes

    def __post_init__(self) -> None:
        if min(self.local_section_bytes, self.system_bytes, self.private_bytes) < 0:
            raise CheckpointError("segment components must be >= 0")


@dataclass
class ExecutionContext:
    """Where execution resumes after a restart."""

    sop_id: int = 0
    iteration: int = 0
    control: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DataSegment:
    """One task's data segment: sized components + exact small state."""

    profile: SegmentProfile
    replicated: Dict[str, Any] = field(default_factory=dict)
    context: ExecutionContext = field(default_factory=ExecutionContext)

    # -- serialization -------------------------------------------------------

    def serialize(self) -> Tuple[bytes, int]:
        """Returns ``(header, pad_bytes)``: the pickled exact state with
        a length prefix, plus how many payload bytes pad the segment out
        to its profiled size.  Segment file size is
        ``max(len(header), profile.total_bytes)``."""
        body = pickle.dumps(
            {
                "replicated": self.replicated,
                "context": {
                    "sop_id": self.context.sop_id,
                    "iteration": self.context.iteration,
                    "control": self.context.control,
                },
                "profile": {
                    "local_section_bytes": self.profile.local_section_bytes,
                    "system_bytes": self.profile.system_bytes,
                    "private_bytes": self.profile.private_bytes,
                },
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        header = len(body).to_bytes(8, "little") + body
        pad = max(0, self.profile.total_bytes - len(header))
        return header, pad

    @property
    def file_bytes(self) -> int:
        """On-disk size of this segment."""
        header, pad = self.serialize()
        return len(header) + pad

    @classmethod
    def deserialize(cls, data: bytes) -> "DataSegment":
        """Rebuild from the leading header of a segment file."""
        if len(data) < 8:
            raise CheckpointError("segment file too short for header")
        n = int.from_bytes(data[:8], "little")
        if len(data) < 8 + n:
            raise CheckpointError("segment header truncated")
        try:
            blob = pickle.loads(data[8 : 8 + n])
        except Exception as exc:
            raise CheckpointError(f"corrupt segment header: {exc}") from exc
        prof = blob["profile"]
        ctx = blob["context"]
        return cls(
            profile=SegmentProfile(
                local_section_bytes=prof["local_section_bytes"],
                system_bytes=prof["system_bytes"],
                private_bytes=prof["private_bytes"],
            ),
            replicated=blob["replicated"],
            context=ExecutionContext(
                sop_id=ctx["sop_id"],
                iteration=ctx["iteration"],
                control=ctx["control"],
            ),
        )

    @classmethod
    def header_prefix_bytes(cls) -> int:
        """How many leading bytes :meth:`deserialize` may need; callers
        read at least this much.  Generous bound for small replicated
        sets; larger replicated payloads should read the whole file."""
        return 1 << 20
