"""Incremental checkpointing and memory exclusion (paper Section 6).

The paper notes that state-of-the-art optimizations — "data compression,
incremental checkpointing that saves only modified pages, ... detection
of killed variables" (Plank et al. [13]) — were not applied to either
scheme, and that "these optimizations can be equally applied to DRMS
checkpointing".  This module implements them for the DRMS scheme, at
the natural DRMS granularity: the *stream pieces* of the Fig. 5a
partition play the role of pages.

* :class:`IncrementalCheckpointer` writes a **base** checkpoint (a plain
  DRMS checkpoint plus per-piece content hashes) and then **delta**
  checkpoints containing only the pieces whose content changed; restart
  reconstructs the arrays from the base plus the delta chain, on any
  task count — incrementality does not cost reconfigurability.
* For arrays without materialized data (bench-scale virtual payloads),
  dirtiness is declared per array as a fraction, modeling the page-level
  dirty tracking of [13].
* :func:`excluded_segment_bytes` models memory exclusion on the data
  segment (dead/clean private pages are skipped), which is what lets a
  compiler-optimized *task-based* checkpoint approach the DRMS state
  size (the §6 discussion) — the shadow-region overhead of
  :mod:`repro.perfmodel.shadow_ratio` is what remains.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    RestoredState,
    _publish_breakdown,
    drms_checkpoint,
    drms_restart,
)
from repro.checkpoint.format import (
    distribution_to_spec,
    read_manifest,
    sha1_hex,
    spec_to_distribution,
    write_manifest,
)
from repro.checkpoint.segment import DataSegment
from repro.checkpoint.validate import verify_stored_sha1
from repro.errors import CheckpointError, RestartError
from repro.obs import get_tracer
from repro.pfs.phase import IOKind
from repro.pfs.piofs import PIOFS
from repro.streaming.order import bytes_to_section
# cached front-ends: repeated full/incremental checkpoints of the same
# arrays replan the piece partition only once (see repro.plancache)
from repro.plancache.plans import partition_for_target, piece_offsets
from repro.streaming.serial import _strict_default, scatter_piece
from repro.streaming.vectorized import gather_section_flat
from repro.arrays.slices import Slice

__all__ = ["IncrementalCheckpointer", "excluded_segment_bytes"]


def excluded_segment_bytes(
    segment: DataSegment, clean_private_fraction: float
) -> int:
    """Segment bytes after memory exclusion: clean/dead private pages
    are skipped; local sections, system buffers, and the exact header
    still go out.  ``clean_private_fraction`` is the fraction of the
    private/replicated component that exclusion proves unmodified."""
    if not 0.0 <= clean_private_fraction <= 1.0:
        raise CheckpointError("clean fraction must be within [0, 1]")
    p = segment.profile
    kept_private = int(p.private_bytes * (1.0 - clean_private_fraction))
    return p.local_section_bytes + p.system_bytes + kept_private


def _piece_hash(data) -> str:
    """SHA-1 of one piece's stream bytes (any buffer-protocol object:
    bytes, or a contiguous uint8 view of the bulk-gathered stream)."""
    return hashlib.sha1(data).hexdigest()


def _stream_u8(arr: DistributedArray, order: str) -> np.ndarray:
    """The array's full stream as a uint8 vector, via one bulk
    vectorized gather: piece ``j`` of the Fig. 5a partition is exactly
    the byte interval ``[offsets[j], offsets[j] + size_j)`` of it, so
    per-piece hashing and delta writes slice instead of re-gathering."""
    flat = gather_section_flat(
        arr, Slice.full(arr.shape), order=order, strict=_strict_default()
    )
    return flat.view(np.uint8)


@dataclass
class _ArrayPlan:
    """Partition plan + current piece hashes for one array."""

    pieces: List[Slice]
    offsets: List[int]
    hashes: List[Optional[str]]


class IncrementalCheckpointer:
    """Base + delta checkpoints over the DRMS stream-piece granularity."""

    def __init__(
        self,
        pfs: PIOFS,
        prefix: str,
        order: str = "F",
        target_bytes: int = 1 << 20,
        io_tasks: Optional[int] = None,
        app_name: str = "",
    ):
        self.pfs = pfs
        self.prefix = prefix
        self.order = order
        self.target_bytes = target_bytes
        self.io_tasks = io_tasks
        self.app_name = app_name
        self.version = -1  # -1: no base yet; 0: base; k: k-th delta
        self._plans: Dict[str, _ArrayPlan] = {}
        #: declared dirty fractions for virtual arrays, by name
        self.declared_dirty: Dict[str, float] = {}

    # -- planning ----------------------------------------------------------

    def _plan_for(self, arr: DistributedArray) -> _ArrayPlan:
        pieces = partition_for_target(
            Slice.full(arr.shape),
            arr.itemsize,
            target_bytes=self.target_bytes,
            min_pieces=self.io_tasks or arr.ntasks,
            order=self.order,
        )
        return _ArrayPlan(
            pieces=pieces,
            offsets=piece_offsets(pieces, arr.itemsize),
            hashes=[None] * len(pieces),
        )

    def declare_dirty(self, name: str, fraction: float) -> None:
        """For virtual arrays: declare what fraction of the array's
        pieces changed since the last checkpoint (page-table model)."""
        if not 0.0 <= fraction <= 1.0:
            raise CheckpointError("dirty fraction must be within [0, 1]")
        self.declared_dirty[name] = fraction

    # -- base checkpoint ------------------------------------------------------

    def full(
        self, segment: DataSegment, arrays: Sequence[DistributedArray]
    ) -> CheckpointBreakdown:
        """Write the base: a regular DRMS checkpoint plus piece hashes."""
        bd = drms_checkpoint(
            self.pfs,
            f"{self.prefix}.base",
            segment,
            arrays,
            order=self.order,
            io_tasks=self.io_tasks,
            target_bytes=self.target_bytes,
            app_name=self.app_name,
        )
        self._plans = {}
        for arr in arrays:
            plan = self._plan_for(arr)
            if arr.store_data:
                u8 = _stream_u8(arr, self.order)
                for i, piece in enumerate(plan.pieces):
                    if piece.is_empty:
                        continue
                    off = plan.offsets[i]
                    plan.hashes[i] = _piece_hash(
                        u8[off:off + piece.size * arr.itemsize]
                    )
            self._plans[arr.name] = plan
        self.version = 0
        self._write_chain_manifest(arrays, deltas=[])
        return bd

    # -- delta checkpoints ---------------------------------------------------------

    def incremental(
        self, segment: DataSegment, arrays: Sequence[DistributedArray]
    ) -> CheckpointBreakdown:
        """Write only the pieces that changed since the previous base or
        delta.  The data segment's exact header always goes out; its
        bulk is re-used from the base (the [13] clean-page model)."""
        if self.version < 0:
            raise CheckpointError("incremental checkpoint requires a base; call full()")
        self.version += 1
        k = self.version
        bd = CheckpointBreakdown(kind="drms-delta", prefix=f"{self.prefix}.d{k}", ntasks=arrays[0].ntasks if arrays else 1)
        obs = get_tracer()
        with obs.span(
            "checkpoint",
            kind="drms-delta",
            prefix=bd.prefix,
            ntasks=bd.ntasks,
            delta_index=k,
        ) as op:
            # Segment header (exact state: replicated vars, context).
            header, _pad = segment.serialize()
            seg_name = f"{self.prefix}.d{k}.segment"
            self.pfs.create(seg_name)
            with obs.span("segment_write", file=seg_name) as sp:
                self.pfs.begin_phase(IOKind.WRITE_SERIAL)
                self.pfs.write_at(seg_name, 0, header, client=0)
                res = self.pfs.end_phase()
                obs.advance(res.seconds)
                sp.set(nbytes=len(header), seconds=res.seconds)
            bd.segment_seconds = res.seconds
            bd.segment_bytes = len(header)

            delta_arrays = []
            for arr in arrays:
                plan = self._plans.get(arr.name)
                if plan is None:
                    raise CheckpointError(
                        f"array {arr.name!r} was not part of the base checkpoint"
                    )
                dirty = self._dirty_pieces(arr, plan)
                fname = f"{self.prefix}.d{k}.array.{arr.name}"
                self.pfs.create(fname, virtual=not arr.store_data)
                entries = []
                u8 = _stream_u8(arr, self.order) if arr.store_data else None
                with obs.span(f"delta:{arr.name}", file=fname) as sp:
                    self.pfs.begin_phase(IOKind.WRITE_PARALLEL)
                    pos = 0
                    written = 0
                    file_hash = hashlib.sha1()  # intended bytes, in file order
                    P = self.io_tasks or arr.ntasks
                    for j in dirty:
                        piece = plan.pieces[j]
                        nbytes = piece.size * arr.itemsize
                        if u8 is not None:
                            off = plan.offsets[j]
                            data = u8[off:off + nbytes].tobytes()
                            self.pfs.write_at(fname, pos, data, client=j % P)
                            plan.hashes[j] = _piece_hash(data)
                            file_hash.update(data)
                        else:
                            self.pfs.write_at(fname, pos, None, nbytes=nbytes, client=j % P)
                        entries.append({"piece": j, "offset": pos, "nbytes": nbytes})
                        pos += nbytes
                        written += nbytes
                    res = self.pfs.end_phase()
                    obs.advance(res.seconds)
                    sp.set(
                        nbytes=written,
                        dirty_pieces=len(dirty),
                        total_pieces=len(plan.pieces),
                        seconds=res.seconds,
                    )
                bd.arrays_seconds += res.seconds
                bd.arrays_bytes += written
                bd.per_array.append((arr.name, res.seconds, written))
                delta_arrays.append(
                    {
                        "name": arr.name,
                        "file": fname,
                        "entries": entries,
                        "nbytes": written,
                        "sha1": file_hash.hexdigest() if arr.store_data else None,
                    }
                )
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)

        _publish_breakdown("checkpoint", bd)
        write_manifest(
            self.pfs,
            f"{self.prefix}.d{k}",
            {
                "kind": "drms-delta",
                "app_name": self.app_name,
                "base": f"{self.prefix}.base",
                "delta_index": k,
                "segment_file": seg_name,
                "segment_bytes": len(header),
                "segment_sha1": sha1_hex(header),
                "arrays": delta_arrays,
            },
        )
        self._write_chain_manifest(arrays, deltas=list(range(1, k + 1)))
        return bd

    def _dirty_pieces(self, arr: DistributedArray, plan: _ArrayPlan) -> List[int]:
        nonempty = [j for j, p in enumerate(plan.pieces) if not p.is_empty]
        if arr.store_data:
            u8 = _stream_u8(arr, self.order)
            out = []
            for j in nonempty:
                off = plan.offsets[j]
                nb = plan.pieces[j].size * arr.itemsize
                if _piece_hash(u8[off:off + nb]) != plan.hashes[j]:
                    out.append(j)
            return out
        fraction = self.declared_dirty.get(arr.name, 1.0)
        count = int(round(fraction * len(nonempty)))
        return nonempty[:count]

    # -- chain manifest -----------------------------------------------------------

    def _write_chain_manifest(
        self, arrays: Sequence[DistributedArray], deltas: List[int]
    ) -> None:
        write_manifest(
            self.pfs,
            f"{self.prefix}.chain",
            {
                "kind": "drms-chain",
                "app_name": self.app_name,
                "base": f"{self.prefix}.base",
                "deltas": [f"{self.prefix}.d{k}" for k in deltas],
                "order": self.order,
                "arrays": [
                    {
                        "name": a.name,
                        "shape": list(a.shape),
                        "dtype": np.dtype(a.dtype).str,
                        "virtual": not a.store_data,
                        "distribution": distribution_to_spec(a.distribution),
                    }
                    for a in arrays
                ],
            },
        )

    # -- restore ------------------------------------------------------------------

    def restore(self, ntasks: int) -> Tuple[RestoredState, RestartBreakdown]:
        """Rebuild from base + delta chain on ``ntasks`` tasks (any
        count): restore the base, then overlay each delta's pieces."""
        chain = read_manifest(self.pfs, f"{self.prefix}.chain")
        obs = get_tracer()
        with obs.span(
            "restart",
            kind="drms-chain",
            prefix=f"{self.prefix}.chain",
            ntasks=ntasks,
            deltas=len(chain["deltas"]),
        ) as op:
            state, bd = drms_restart(
                self.pfs,
                chain["base"],
                ntasks,
                order=self.order,
                io_tasks=self.io_tasks,
                target_bytes=self.target_bytes,
            )
            for delta_prefix in chain["deltas"]:
                dm = read_manifest(self.pfs, delta_prefix)
                with obs.span(f"overlay:{delta_prefix}") as dsp:
                    # the most recent segment header wins (exact state)
                    seg_file = dm["segment_file"]
                    head = self.pfs.read_at(
                        seg_file, 0, self.pfs.file_size(seg_file), client=0
                    )
                    verify_stored_sha1(
                        self.pfs, seg_file, dm.get("segment_sha1"),
                        dm.get("segment_bytes"), head=head,
                    )
                    state.segment = DataSegment.deserialize(head)
                    overlay_bytes = 0
                    for spec in dm["arrays"]:
                        verify_stored_sha1(
                            self.pfs, spec["file"], spec.get("sha1"), spec.get("nbytes")
                        )
                        arr = state.arrays[spec["name"]]
                        plan = self._plan_for(arr)
                        self.pfs.begin_phase(IOKind.READ_PARALLEL)
                        P = self.io_tasks or ntasks
                        applied = 0
                        for e in spec["entries"]:
                            piece = plan.pieces[e["piece"]]
                            if arr.store_data:
                                data = self.pfs.read_at(
                                    spec["file"], e["offset"], e["nbytes"],
                                    client=e["piece"] % P,
                                )
                                scatter_piece(
                                    arr,
                                    piece,
                                    bytes_to_section(data, piece.shape, arr.dtype, self.order),
                                    order=self.order,
                                )
                            else:
                                self.pfs.read_virtual(
                                    spec["file"], e["offset"], e["nbytes"],
                                    client=e["piece"] % P,
                                )
                            applied += e["nbytes"]
                        res = self.pfs.end_phase()
                        obs.advance(res.seconds)
                        bd.arrays_seconds += res.seconds
                        bd.arrays_bytes += applied
                        overlay_bytes += applied
                    dsp.set(nbytes=overlay_bytes)
            op.set(nbytes=bd.total_bytes, seconds=bd.total_seconds)
        return state, bd

    # -- accounting ---------------------------------------------------------------

    def chain_state_bytes(self) -> Dict[str, int]:
        """Total on-disk state of base + deltas (the size ablation)."""
        base = self.pfs.total_bytes(f"{self.prefix}.base")
        deltas = sum(
            self.pfs.total_bytes(f"{self.prefix}.d{k}")
            for k in range(1, max(self.version, 0) + 1)
        )
        return {"base": base, "deltas": deltas, "total": base + deltas}
