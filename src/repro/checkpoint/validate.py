"""Checkpoint integrity validation.

A crash — or a silently misbehaving I/O path — can leave a checkpointed
state whose manifest committed but whose data files are torn, short, or
bit-flipped.  The manifest's version-3 checksums (SHA-1 over the
*intended* bytes, recorded at write time) make such states detectable:

* :func:`verify_stored_sha1` checks one file against its recorded
  digest, raising :class:`~repro.errors.CheckpointIntegrityError` on a
  truncation or mismatch — the primitive restart uses inline;
* :func:`validate_checkpoint` audits a complete state (either
  checkpoint kind, including incremental chains) and returns a
  :class:`ValidationReport` instead of raising, so a recovery policy
  can walk candidate states and pick the newest one that verifies
  (:mod:`repro.checkpoint.recover`);
* :func:`verify_checkpoint` is the raising form of the audit.

Validation reads are untimed (no I/O phase is opened): they model an
out-of-band scrub, not part of the restart's measured I/O.  States
written by format version 2 carry no checksums; their files are only
checked for existence and size, which keeps old states readable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.checkpoint.format import manifest_name, read_manifest, sha1_hex
from repro.errors import CheckpointError, CheckpointIntegrityError, PFSError
from repro.obs import get_tracer
from repro.pfs.piofs import PIOFS

__all__ = [
    "ValidationReport",
    "validate_checkpoint",
    "verify_checkpoint",
    "verify_stored_sha1",
]

_CHUNK = 4 << 20


def verify_stored_sha1(
    pfs: PIOFS,
    name: str,
    sha1: Optional[str],
    nbytes: Optional[int],
    head: Optional[bytes] = None,
) -> int:
    """Check the first ``nbytes`` stored bytes of ``name`` against the
    recorded ``sha1`` digest.

    Skips silently (returns 0) when the manifest recorded no digest —
    pre-v3 states and virtual files.  ``head``, when given, is data the
    caller already read from offset 0 (a restart's header read), reused
    to avoid a second pass.  Raises
    :class:`~repro.errors.CheckpointIntegrityError` if the file is
    shorter than ``nbytes`` (torn/short write) or hashes differently
    (corruption).  Returns the number of bytes hashed.
    """
    if not sha1 or not nbytes:
        return 0
    size = pfs.file_size(name)
    if size < nbytes:
        raise CheckpointIntegrityError(
            f"file {name!r} is {size} bytes; checksum covers {nbytes} "
            "(torn or short write)"
        )
    if head is not None and len(head) >= nbytes:
        digest = sha1_hex(head[:nbytes])
    else:
        h = hashlib.sha1()
        pos = 0
        while pos < nbytes:
            chunk = pfs.read_at(name, pos, min(_CHUNK, nbytes - pos))
            h.update(chunk)
            pos += len(chunk)
        digest = h.hexdigest()
    if digest != sha1:
        raise CheckpointIntegrityError(
            f"file {name!r} checksum mismatch: stored bytes hash to "
            f"{digest}, manifest records {sha1}"
        )
    return int(nbytes)


@dataclass
class ValidationReport:
    """Outcome of auditing one checkpointed state."""

    prefix: str
    errors: List[str] = field(default_factory=list)
    files: int = 0
    bytes_hashed: int = 0

    @property
    def ok(self) -> bool:
        """True when every component verified."""
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok


def _check_file(
    pfs: PIOFS,
    report: ValidationReport,
    name: str,
    expected_bytes: Optional[int],
    sha1: Optional[str],
    sha_bytes: Optional[int],
) -> None:
    """Audit one component file into ``report`` (never raises)."""
    if not pfs.exists(name):
        report.errors.append(f"missing file {name!r}")
        return
    report.files += 1
    size = pfs.file_size(name)
    if expected_bytes is not None and size != expected_bytes:
        report.errors.append(
            f"file {name!r} is {size} bytes; manifest records {expected_bytes}"
        )
        return
    try:
        report.bytes_hashed += verify_stored_sha1(pfs, name, sha1, sha_bytes)
    except (CheckpointIntegrityError, PFSError) as exc:
        report.errors.append(str(exc))


def validate_checkpoint(
    pfs: PIOFS, prefix: str, _seen: Optional[Set[str]] = None
) -> ValidationReport:
    """Audit the complete checkpointed state under ``prefix``.

    Every component file is checked for presence, manifest-recorded
    size, and (v3 states) SHA-1 digest; incremental chains recurse into
    their base and deltas.  All problems are *collected* — the returned
    :class:`ValidationReport` lists them in ``errors`` and is truthy
    exactly when the state is sound — so callers can rank candidate
    states rather than stop at the first bad one.
    """
    if _seen is None:
        # Top-level audit: one span covering the whole walk (chain
        # recursion folds into it rather than nesting per member).
        obs = get_tracer()
        with obs.span("validate", prefix=prefix) as sp:
            report = validate_checkpoint(pfs, prefix, _seen=set())
            sp.set(
                files=report.files,
                bytes_hashed=report.bytes_hashed,
                ok=report.ok,
            )
        m = obs.metrics
        m.counter("validate.count").inc()
        m.counter("validate.files").inc(report.files)
        m.counter("validate.bytes_hashed").inc(report.bytes_hashed)
        if not report.ok:
            m.counter("validate.failed").inc()
        return report
    report = ValidationReport(prefix=prefix)
    seen = _seen
    if prefix in seen:
        report.errors.append(f"checkpoint chain cycles back to {prefix!r}")
        return report
    seen.add(prefix)
    try:
        manifest = read_manifest(pfs, prefix)
    except CheckpointError as exc:
        report.errors.append(str(exc))
        return report
    report.files += 1
    kind = manifest.get("kind")
    if kind == "drms":
        _check_file(
            pfs,
            report,
            manifest["segment_file"],
            manifest.get("segment_bytes"),
            manifest.get("segment_sha1"),
            manifest.get("segment_sha1_bytes"),
        )
        for spec in manifest["arrays"]:
            _check_file(
                pfs,
                report,
                spec["file"],
                spec.get("nbytes"),
                None if spec.get("virtual") else spec.get("sha1"),
                spec.get("nbytes"),
            )
    elif kind == "spmd":
        sizes = manifest.get("segment_bytes") or []
        shas = manifest.get("task_sha1") or []
        sha_bytes = manifest.get("task_sha1_bytes") or []
        for i, fname in enumerate(manifest["task_files"]):
            _check_file(
                pfs,
                report,
                fname,
                sizes[i] if i < len(sizes) else None,
                shas[i] if i < len(shas) else None,
                sha_bytes[i] if i < len(sha_bytes) else None,
            )
    elif kind == "drms-delta":
        _check_file(
            pfs,
            report,
            manifest["segment_file"],
            manifest.get("segment_bytes"),
            manifest.get("segment_sha1"),
            manifest.get("segment_bytes"),
        )
        for spec in manifest["arrays"]:
            _check_file(
                pfs,
                report,
                spec["file"],
                spec.get("nbytes"),
                spec.get("sha1"),
                spec.get("nbytes"),
            )
    elif kind == "drms-chain":
        for sub in [manifest["base"], *manifest["deltas"]]:
            inner = validate_checkpoint(pfs, sub, _seen=seen)
            report.errors.extend(inner.errors)
            report.files += inner.files
            report.bytes_hashed += inner.bytes_hashed
    else:
        report.errors.append(f"unknown checkpoint kind {kind!r}")
    return report


def verify_checkpoint(pfs: PIOFS, prefix: str) -> ValidationReport:
    """Raising form of :func:`validate_checkpoint`: returns the report
    when the state is sound, raises
    :class:`~repro.errors.CheckpointIntegrityError` listing every
    problem otherwise."""
    report = validate_checkpoint(pfs, prefix)
    if not report.ok:
        raise CheckpointIntegrityError(
            f"checkpoint {prefix!r} failed validation: "
            + "; ".join(report.errors)
        )
    return report
