"""Recovery policy: restart from the newest checkpoint that verifies.

The paper (Section 3) keeps multiple checkpointed states under rotating
prefixes precisely so that "the application can be restarted from any
of them".  This module turns that flexibility into an automatic
policy: walk the candidate states newest-to-oldest, audit each with
:func:`~repro.checkpoint.validate.validate_checkpoint`, and restart
from the first sound one — so a state corrupted by a torn write or a
flipped bit costs one generation of progress instead of a failed
recovery.

Every decision is observable: when an :class:`~repro.infra.events.EventLog`
is supplied, the walk emits ``checkpoint_rejected`` for each corrupt
candidate, ``checkpoint_verified`` for the chosen one, and
``restart_fallback`` whenever the chosen state is not the newest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.checkpoint.format import manifest_name
from repro.checkpoint.rotation import generations
from repro.checkpoint.validate import ValidationReport, validate_checkpoint
from repro.errors import RestartError
from repro.obs import get_tracer
from repro.pfs.piofs import PIOFS

__all__ = [
    "RecoveryDecision",
    "restart_candidates",
    "restart_latest_valid",
    "select_restart_state",
]


@dataclass
class RecoveryDecision:
    """Outcome of a recovery walk over the states under ``base``."""

    base: str
    #: the chosen state, or None when no candidate verified
    prefix: Optional[str]
    #: (prefix, errors) for every newer candidate that failed the audit
    rejected: List[Tuple[str, List[str]]] = field(default_factory=list)
    #: which tier serves the chosen state: "l1" (memory replicas), "l2"
    #: (PFS), or None for the PFS-only walk / when nothing verified
    tier: Optional[str] = None

    @property
    def fell_back(self) -> bool:
        """True when the chosen state is not the newest candidate."""
        return self.prefix is not None and bool(self.rejected)


def restart_candidates(pfs: PIOFS, base: str) -> List[str]:
    """Restartable prefixes under ``base``, newest first: the rotation
    generations (``base.NNNNNN``) in reverse order, then ``base``
    itself when a plain un-rotated state exists under that name."""
    out = list(reversed(generations(pfs, base)))
    if pfs.exists(manifest_name(base)):
        out.append(base)
    return out


def select_restart_state(
    pfs: PIOFS,
    base: str,
    events=None,
    clock: float = 0.0,
    job: Optional[str] = None,
    l1=None,
) -> RecoveryDecision:
    """Pick the newest checkpointed state under ``base`` that passes
    validation, recording (and optionally emitting as events) each
    rejected newer state.  ``events``/``clock``/``job`` hook the walk
    into a cluster's :class:`~repro.infra.events.EventLog`.

    ``l1``, when given an :class:`~repro.mlck.store.L1Store`, upgrades
    the walk to the tier-aware policy of
    :func:`~repro.mlck.recovery.select_tiered_restart_state`: the
    newest generation satisfiable from *any* tier wins, memory replicas
    preferred over the PFS, and the decision's ``tier`` says which tier
    serves it."""
    if l1 is not None:
        from repro.mlck.recovery import select_tiered_restart_state

        return select_tiered_restart_state(
            pfs, base, l1, events=events, clock=clock, job=job
        )
    decision = RecoveryDecision(base=base, prefix=None)
    obs = get_tracer()
    with obs.span("recovery_walk", base=base, job=job) as sp:
        candidates = restart_candidates(pfs, base)
        for candidate in candidates:
            report = validate_checkpoint(pfs, candidate)
            if report.ok:
                decision.prefix = candidate
                obs.metrics.counter("recover.verified").inc()
                if events is not None:
                    events.emit(
                        clock, "checkpoint_verified",
                        job=job, prefix=candidate, files=report.files,
                        bytes_hashed=report.bytes_hashed,
                    )
                    if decision.rejected:
                        events.emit(
                            clock, "restart_fallback",
                            job=job, prefix=candidate,
                            skipped=[p for p, _ in decision.rejected],
                        )
                if decision.rejected:
                    obs.mark(
                        "restart_fallback",
                        chosen=candidate,
                        skipped=[p for p, _ in decision.rejected],
                    )
                    obs.metrics.counter("recover.fallback").inc()
                break
            decision.rejected.append((candidate, report.errors))
            obs.mark(
                "checkpoint_rejected", prefix=candidate, errors=len(report.errors)
            )
            obs.metrics.counter("recover.rejected").inc()
            if events is not None:
                events.emit(
                    clock, "checkpoint_rejected",
                    job=job, prefix=candidate, errors=list(report.errors),
                )
        sp.set(
            candidates=len(candidates),
            rejected=len(decision.rejected),
            chosen=decision.prefix,
        )
    return decision


def restart_latest_valid(pfs: PIOFS, base: str, ntasks: int, **kwargs):
    """Convenience engine entry point: :func:`select_restart_state`
    followed by :func:`~repro.checkpoint.drms.drms_restart` of the
    chosen state.  Raises :class:`~repro.errors.RestartError` when no
    checkpoint under ``base`` verifies."""
    from repro.checkpoint.drms import drms_restart

    decision = select_restart_state(pfs, base)
    if decision.prefix is None:
        detail = "; ".join(
            f"{p}: {errs[0]}" for p, errs in decision.rejected[:3]
        )
        raise RestartError(
            f"no checkpoint under {base!r} passes validation"
            + (f" ({detail})" if detail else "")
        )
    state, bd = drms_restart(pfs, decision.prefix, ntasks, **kwargs)
    return state, bd, decision
