"""Computational steering and inter-application communication.

Both are direct uses of the array-assignment/streaming primitives
(paper Sections 3.1-3.2): a steering client reads or writes *sections*
of a running application's distributed arrays in the canonical stream
order, without knowing (or caring about) the current distribution; and
two applications exchange data by assigning one distributed array to
another across their (independent) distributions.

Live steering: requests from a client (any thread) queue in the
application's :class:`SteeringHub`; the running SPMD program services
them *at steering points* — globally consistent SOP-like points marked
with :meth:`~repro.drms.context.DRMSContext.steering_point` — so a
client never observes a half-updated field.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Optional

import numpy as np

from repro.arrays.assignment import array_assign, build_schedule, schedule_bytes
from repro.arrays.darray import DistributedArray
from repro.arrays.slices import Slice
from repro.errors import ArrayError, SteeringTimeoutError
from repro.streaming.order import bytes_to_section, check_order
from repro.streaming.serial import gather_piece, scatter_piece
from repro.streaming.partition import partition_for_target

__all__ = [
    "steer_read",
    "steer_write",
    "app_transfer",
    "SteeringFuture",
    "SteeringHub",
]


def steer_read(
    array: DistributedArray,
    section: Optional[Slice] = None,
    order: str = "F",
) -> np.ndarray:
    """Read ``array[section]`` into a dense array shaped like the
    section — the steering client's distribution-independent view."""
    check_order(order)
    section = section or Slice.full(array.shape)
    return gather_piece(array, section, order)


def steer_write(
    array: DistributedArray,
    values: np.ndarray,
    section: Optional[Slice] = None,
) -> None:
    """Write a dense section into the array; every mapped copy of every
    element is updated consistently (steering a live computation)."""
    section = section or Slice.full(array.shape)
    values = np.asarray(values, dtype=array.dtype)
    if values.shape != section.shape:
        raise ArrayError(
            f"steer_write: values shape {values.shape} != section shape {section.shape}"
        )
    scatter_piece(array, section, values)


class SteeringFuture:
    """Completion handle for one queued steering request.  Knows which
    request it tracks (``kind``/``name``/``section``) so a timeout can
    say *what* was never serviced."""

    def __init__(self, kind: str = "", name: str = "",
                 section: Optional[Slice] = None):
        self.kind = kind
        self.name = name
        self.section = section
        self._event = threading.Event()
        self._result: Any = None
        self._error: Optional[BaseException] = None

    def _fulfill(self, result: Any = None, error: Optional[BaseException] = None):
        self._result = result
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = 30.0) -> Any:
        """Block for the serviced result; raises the relayed error, or
        :class:`~repro.errors.SteeringTimeoutError` when the request is
        never serviced (the application has no steering point in its
        loop, or exited before reaching one)."""
        if not self._event.wait(timeout=timeout):
            where = f" section {self.section}" if self.section is not None else ""
            raise SteeringTimeoutError(
                f"steering {self.kind or 'request'} of {self.name!r}{where} "
                f"not serviced within {timeout}s (no steering point?)",
                kind=self.kind, name=self.name, section=self.section,
            )
        if self._error is not None:
            raise self._error
        return self._result


class SteeringHub:
    """Thread-safe queue between steering clients and a running app.

    Clients call :meth:`read_async` / :meth:`write_async` from any
    thread; the application drains the queue whenever its tasks reach a
    steering point.  Requests against unknown arrays complete with an
    error rather than wedging the client.
    """

    def __init__(self, order: str = "F"):
        self.order = check_order(order)
        self._lock = threading.Lock()
        self._queue: deque = deque()

    # -- client side --------------------------------------------------------

    def read_async(self, name: str, section: Optional[Slice] = None) -> SteeringFuture:
        return self._enqueue(("read", name, section, None))

    def write_async(
        self, name: str, values: np.ndarray, section: Optional[Slice] = None
    ) -> SteeringFuture:
        """Queue a consistent write of a dense section into the named array."""
        return self._enqueue(("write", name, section, np.asarray(values)))

    def _enqueue(self, req) -> SteeringFuture:
        kind, name, section, _ = req
        fut = SteeringFuture(kind=kind, name=name, section=section)
        with self._lock:
            self._queue.append((req, fut))
        return fut

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- application side (called at a steering point, by one task) -----------

    def service(self, arrays) -> int:
        """Drain the queue against the live array registry; returns the
        number of requests serviced."""
        n = 0
        while True:
            with self._lock:
                if not self._queue:
                    return n
                req, fut = self._queue.popleft()
            kind, name, section, values = req
            try:
                arr = arrays[name]
            except KeyError:
                fut._fulfill(error=ArrayError(f"no distributed array {name!r}"))
                continue
            try:
                if kind == "read":
                    fut._fulfill(result=steer_read(arr, section, self.order))
                else:
                    steer_write(arr, values, section)
                    fut._fulfill(result=None)
            except BaseException as exc:  # noqa: BLE001 - relayed to client
                fut._fulfill(error=exc)
            n += 1


def app_transfer(dst: DistributedArray, src: DistributedArray) -> int:
    """Inter-application transfer ``dst <- src`` across independent
    distributions (the two arrays may belong to different applications
    with different task pools).  Returns the wire bytes moved."""
    if dst.shape != src.shape:
        raise ArrayError(
            f"app_transfer shape mismatch: {src.shape} -> {dst.shape}"
        )
    if dst.store_data and src.store_data:
        sched = array_assign(dst, src)
    else:
        sched = build_schedule(src.distribution, dst.distribution)
    return schedule_bytes(sched, src.itemsize, remote_only=True)
