"""The per-task DRMS context: the paper's API, bound to one task.

Task code receives a :class:`DRMSContext` and calls methods that mirror
the Fortran API of Fig. 1 / Table 2.  Execution-context recovery is
implemented by *control-variable replay*: the checkpoint stores the SOP
id, iteration counter, and SOQ control variables in the data segment
(exactly the state the paper's control section defines); on restart the
application function runs again from the top, ``iterations(...)``
resumes the loop at the saved iteration, and the first
``reconfig_checkpoint`` call reports ``RESTARTED`` with the task-count
``delta`` — giving the same observable behaviour as the paper's
binary-level segment reload, portably.

Collective methods (``distribute``, ``reconfig_checkpoint``, ...) must
be called by every task, SPMD-style; they synchronize internally and
charge the same simulated time to every task (blocking checkpoints).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Iterator, Optional, Sequence

import numpy as np

from repro.arrays.darray import DistributedArray
from repro.arrays.distributions import AxisDistribution, Block, Distribution
from repro.arrays.slices import Slice
from repro.errors import CheckpointError, ReconfigurationError
from repro.obs.flight import GLOBAL_NODE, get_flight
from repro.runtime.comm import TaskComm

__all__ = ["CheckpointStatus", "DRMSContext", "TaskArrayView"]


class CheckpointStatus(enum.Enum):
    """Result of a ``reconfig_checkpoint`` call (the API's ``status``)."""

    #: continuing after taking a checkpoint
    TAKEN = "taken"
    #: restarting from an archived state (first call after restart)
    RESTARTED = "restarted"
    #: enabling checkpoint not enabled by the system; nothing written
    SKIPPED = "skipped"


class TaskArrayView:
    """A task's window onto one distributed array."""

    def __init__(self, array: DistributedArray, rank: int):
        self.array = array
        self.rank = rank

    @property
    def name(self) -> str:
        return self.array.name

    @property
    def mapped_slice(self) -> Slice:
        return self.array.distribution.mapped(self.rank)

    @property
    def assigned_slice(self) -> Slice:
        return self.array.distribution.assigned(self.rank)

    @property
    def local(self) -> np.ndarray:
        """The local array holding this task's mapped section."""
        return self.array.local(self.rank)

    @property
    def assigned(self) -> np.ndarray:
        """Copy of the task's owned elements."""
        return self.array.assigned_view(self.rank)

    def set_assigned(self, values: np.ndarray) -> None:
        self.array.set_assigned(self.rank, values)


class DRMSContext:
    """Per-task handle combining the communicator and the DRMS API."""

    def __init__(self, comm: TaskComm, runtime: "AppRuntime"):
        self.comm = comm
        self.runtime = runtime
        self._initialized = False
        self._restart_pending = runtime.restored is not None
        self._iteration = 0
        self._sop = 0

    # -- identity / comm passthrough ---------------------------------------

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def barrier(self) -> None:
        self.comm.barrier()

    def compute(self, seconds: float) -> None:
        self.comm.compute(seconds)

    # -- coordination helper -------------------------------------------------

    def _collective(self, fn: Callable[[], Any]) -> Any:
        """Run ``fn`` once (on rank 0) within a barrier pair; every task
        returns its result.  The trailing barrier keeps the shared slot
        from being overwritten before slow tasks read it."""
        rt = self.runtime
        self.comm.barrier()
        if self.rank == 0:
            rt._coll_result = fn()
        self.comm.barrier()
        result = rt._coll_result
        self.comm.barrier()
        return result

    # -- the DRMS API (Table 2 / Fig. 1) ----------------------------------------

    def initialize(self) -> CheckpointStatus:
        """``drms_initialize``: first call of the application.  On a
        restarted run the checkpointed state has been loaded; the call
        charges the restart's simulated I/O time and reports it."""
        if self._initialized:
            raise CheckpointError("drms_initialize called twice")
        self._initialized = True
        rt = self.runtime
        self.comm.barrier()
        if rt.pending_clock_charge:
            self.comm.clock.advance(rt.pending_clock_charge)
        return (
            CheckpointStatus.RESTARTED
            if rt.restored is not None
            else CheckpointStatus.TAKEN
        )

    def create_distribution(
        self,
        shape: Sequence[int],
        axes: Optional[Sequence[AxisDistribution]] = None,
        shadow: Optional[Sequence[int]] = None,
        grid: Optional[Sequence[int]] = None,
        ntasks: Optional[int] = None,
    ) -> Distribution:
        """``drms_create_distribution``: build a distribution of
        ``shape`` over the current task pool (default: BLOCK on every
        axis, the Fig. 1 example)."""
        axes = list(axes) if axes is not None else [Block() for _ in shape]
        return Distribution(
            shape, axes, ntasks or self.size, grid=grid, shadow=shadow
        )

    def distribute(
        self,
        name: str,
        distribution: Distribution,
        dtype=np.float64,
        init_global: Optional[Any] = None,
        init_local: Optional[Callable[[int, Slice], np.ndarray]] = None,
    ) -> TaskArrayView:
        """``drms_distribute``: create (or, after a restart, rebind) the
        named distributed array under ``distribution``.

        Fresh runs may initialize via ``init_global`` (a full array or a
        ``shape -> array`` callable, materialized once) or via
        ``init_local`` (``(rank, assigned_slice) -> values``, evaluated
        by every task for its own section).  After a restart the
        checkpointed content is preserved; if ``distribution`` differs
        from the automatically adjusted one, the array is redistributed
        to it — the ``drms_adjust``/``drms_distribute`` sequence of
        Fig. 1.
        """
        rt = self.runtime
        if distribution.ntasks != self.size:
            raise ReconfigurationError(
                f"distribution for {name!r} targets {distribution.ntasks} "
                f"tasks; application runs {self.size}"
            )

        def build():
            existing = rt.take_restored_array(name) or rt.arrays.get(name)
            if existing is not None:
                # Rebinding (after restart, or an explicit in-run
                # redistribution): content is preserved.
                arr = existing
                if arr.distribution != distribution:
                    arr = arr.redistributed(distribution)
                fresh = False
            else:
                arr = DistributedArray(
                    name,
                    distribution.shape,
                    dtype,
                    distribution,
                    store_data=rt.store_data,
                )
                if init_global is not None and rt.store_data:
                    values = (
                        init_global(distribution.shape)
                        if callable(init_global)
                        else init_global
                    )
                    arr.set_global(np.asarray(values, dtype=dtype))
                fresh = True
            rt.arrays[name] = arr
            return arr, fresh

        arr, fresh = self._collective(build)
        if fresh and init_local is not None and rt.store_data:
            a = arr.distribution.assigned(self.rank)
            if not a.is_empty:
                arr.set_assigned(self.rank, np.asarray(init_local(self.rank, a), dtype=dtype))
            self.comm.barrier()
        return TaskArrayView(arr, self.rank)

    def adjust(self, name: str) -> Distribution:
        """``drms_adjust``: the stored distribution of array ``name``
        adjusted to the current task count (after a reconfigured restart
        this is the distribution the restart engine derived)."""
        rt = self.runtime
        restored = rt.peek_restored_array(name)
        if restored is not None:
            return restored.distribution
        if name in rt.arrays:
            return rt.arrays[name].distribution.adjust(self.size)
        raise CheckpointError(f"no distributed array {name!r} to adjust")

    def array(self, name: str) -> TaskArrayView:
        """The task's view of an already distributed array."""
        return TaskArrayView(self.runtime.arrays[name], self.rank)

    def update_shadows(self, name: str) -> None:
        """Collective halo refresh of the named array."""
        arr = self.runtime.arrays[name]
        if arr.store_data:
            moved = self._collective(arr.update_shadows)
            # charge the wire traffic of the halo exchange to all tasks
            per_task = moved * arr.itemsize / max(1, self.size)
            self.comm.compute(self.comm.world.transfer_cost(int(per_task)))
        else:
            self.comm.barrier()

    def reconfig_point(self) -> tuple:
        """An SOP at which the task set may change *on the fly* from
        volatile memory (paper §2.2), without checkpoint I/O.  Under an
        :class:`~repro.drms.elastic.ElasticRunner` with a pending
        request, the current task set dissolves here and the run
        resumes on the new count; on re-entry the first call reports
        ``(RESTARTED, delta)``.  Otherwise ``(SKIPPED, 0)``."""
        rt = self.runtime
        self._sop += 1
        rt.note_sop_crossing(self._sop, self._iteration)
        if self._restart_pending:
            self._restart_pending = False
            self.comm.barrier()
            return (CheckpointStatus.RESTARTED, rt.restored.delta)
        runner = getattr(rt.app, "_elastic_runner", None)
        if runner is None:
            self.comm.barrier()
            return (CheckpointStatus.SKIPPED, 0)

        def check():
            req = runner.consume_request(self.size)
            if req is not None:
                rt.capture_memory_state(
                    iteration=self._iteration,
                    sop_id=self._sop,
                    elapsed=self.comm.world.max_clock(),
                )
            return req

        req = self._collective(check)
        if req is None:
            return (CheckpointStatus.SKIPPED, 0)
        from repro.drms.elastic import ReconfigExit

        raise ReconfigExit(req)

    def steering_point(self) -> int:
        """A globally consistent point at which queued steering
        requests are serviced (collective).  Returns how many requests
        were handled; 0 when no client is attached or nothing queued."""
        rt = self.runtime
        hub = getattr(rt.app, "steering", None)
        if hub is None:
            self.comm.barrier()
            return 0
        return self._collective(lambda: hub.service(rt.arrays))

    # -- replicated variables & control section ----------------------------------

    def set_replicated(self, name: str, value: Any) -> None:
        """Set a replicated variable (same value on every task; SPMD
        code calls this symmetrically)."""
        self.runtime.replicated[name] = value

    def get_replicated(self, name: str, default: Any = None) -> Any:
        return self.runtime.replicated.get(name, default)

    def set_control(self, name: str, value: Any) -> None:
        """Set an SOQ control variable (stored in checkpoints)."""
        self.runtime.control[name] = value

    def get_control(self, name: str, default: Any = None) -> Any:
        return self.runtime.control.get(name, default)

    # -- the SOQ loop ------------------------------------------------------------

    def iterations(self, start: int, stop: int, step: int = 1) -> Iterator[int]:
        """The application's outer SOQ loop.  On a restarted run the
        loop resumes at the checkpointed iteration (the body containing
        the ``reconfig_checkpoint`` call re-executes, matching the
        paper's 'execution continues from the corresponding
        drms_reconfig_checkpoint call')."""
        begin = start
        rt = self.runtime
        if rt.restored is not None:
            begin = rt.restored.segment.context.iteration
        for it in range(begin, stop, step):
            self._iteration = it
            self._maybe_fail(it)
            yield it

    def _maybe_fail(self, iteration: int) -> None:
        """Fire an armed failure plan: the task on the doomed node dies,
        taking the application down (single failure crashes the app)."""
        plan = getattr(self.runtime, "failure_plan", None)
        if plan is None or not plan.should_fire(iteration):
            return
        my_node = self.comm.world.placement.get(self.rank)
        # claim() is the atomic check-and-disarm: with several tasks
        # placed on the doomed node, exactly one wins the claim and
        # dies as the failing processor (the rest die as collateral
        # when the SPMD engine tears the task group down).
        # claim() advances plan.node_id to the next schedule entry under
        # multi=, so the node that dies is the claimer's own (my_node).
        if my_node == plan.node_id and plan.claim(iteration):
            from repro.infra.failure import NodeFailure

            self.runtime.app.machine.fail_node(my_node)
            raise NodeFailure(my_node)

    @property
    def iteration(self) -> int:
        return self._iteration

    # -- checkpointing --------------------------------------------------------------

    @property
    def policy(self):
        """The checkpoint-cadence policy attached to this run's
        application (``DRMSApplication(policy=...)``), or None."""
        return self.runtime.policy

    def _skip_sop(self) -> tuple:
        """Cross a SOP without checkpointing (the disabled branch of an
        enabling or policy-driven checkpoint): the SOP still counts as
        a quiesce anchor and a flight-recorder crossing."""
        rt = self.runtime
        self._sop += 1
        rt.note_sop_crossing(self._sop, self._iteration)
        fr = get_flight()
        if fr.enabled:
            my_node = self.comm.world.placement.get(self.rank)
            fr.record(
                "sop_crossed",
                node=my_node if my_node is not None else GLOBAL_NODE,
                time=self.comm.clock.now,
                sop=self._sop, iteration=self._iteration,
                rank=self.rank, skipped=True,
            )
        return (CheckpointStatus.SKIPPED, 0)

    def policy_checkpoint(
        self,
        prefix: str,
        policy=None,
        final: bool = False,
        enable_mode: bool = False,
    ) -> tuple:
        """``drms_policy_checkpoint``: a cadence decision point.  The
        attached :class:`~repro.policy.engine.CheckpointPolicy` (or the
        explicit ``policy``) decides whether this SOP checkpoints;
        applications call it every iteration instead of hardcoding an
        ``it % every`` test.

        Collective.  The decision is made once (on rank 0, against the
        run's shared policy state) so every task agrees.  Semantics
        match the API calls it wraps: the first call after a restart
        reports ``(RESTARTED, delta)`` without consulting the policy; a
        positive decision runs ``reconfig_checkpoint`` (or
        ``reconfig_chkenable`` when ``enable_mode`` — the JSA's
        enabling signal still gates the write); a negative decision
        crosses the SOP and returns ``(SKIPPED, 0)``.  ``final`` marks
        the run's last SOP for ``at_end`` rules.  Observed checkpoint
        costs are fed back to adaptive rules."""
        rt = self.runtime
        pol = policy if policy is not None else rt.policy
        if pol is None:
            raise CheckpointError(
                "policy_checkpoint needs a cadence policy: pass policy= "
                "or construct DRMSApplication(policy=...)"
            )
        if self._restart_pending:
            return self.reconfig_checkpoint(prefix)
        from repro.policy.rules import Observation

        obs = Observation(
            iteration=self._iteration,
            sim_time=self.comm.clock.now,
            final=final,
            health=rt.app.health,
        )
        decision = self._collective(lambda: pol.decide(obs, rt.policy_state))
        if not decision.fire:
            return self._skip_sop()
        if enable_mode:
            return self.reconfig_chkenable(prefix)
        status, delta = self.reconfig_checkpoint(prefix)
        if status is CheckpointStatus.TAKEN and rt.checkpoints:
            cost = rt.checkpoints[-1][1].total_seconds
            self._collective(lambda: pol.observe_cost(rt.policy_state, cost))
        return (status, delta)

    def reconfig_checkpoint(self, prefix: str) -> tuple:
        """``drms_reconfig_checkpoint``: mandatory checkpoint at this
        SOP.  Returns ``(status, delta)``: after a restart the first
        call reports ``RESTARTED`` and the change in task count; on a
        normal pass the state is written and ``TAKEN`` is returned."""
        rt = self.runtime
        self._sop += 1
        rt.note_sop_crossing(self._sop, self._iteration)
        fr = get_flight()
        if fr.enabled:
            my_node = self.comm.world.placement.get(self.rank)
            fr.record(
                "sop_crossed",
                node=my_node if my_node is not None else GLOBAL_NODE,
                time=self.comm.clock.now,
                sop=self._sop, iteration=self._iteration, rank=self.rank,
            )
        if self._restart_pending:
            self._restart_pending = False
            self.comm.barrier()
            return (CheckpointStatus.RESTARTED, rt.restored.delta)

        def take():
            seg = rt.build_segment(iteration=self._iteration, sop_id=self._sop)
            bd = rt.engine_checkpoint(prefix, seg, clock=self.comm.clock.now)
            return bd

        bd = self._collective(take)
        if fr.enabled and self.rank == 0:
            fr.record(
                "checkpoint_taken", prefix=prefix, sop=self._sop,
                time=self.comm.clock.now,
                iteration=self._iteration, seconds=bd.total_seconds,
            )
        # Blocking checkpoint: every task waits for the state to hit the
        # file system before continuing.
        self.comm.clock.advance(bd.total_seconds)
        return (CheckpointStatus.TAKEN, 0)

    def workflow_exchange(self, final: bool = False) -> tuple:
        """``drms_workflow_exchange``: the coupled-workflow analogue of
        ``reconfig_checkpoint``.  Collective across this member's tasks
        *and* aligned across every member of the owning
        :class:`~repro.workflow.coordinator.WorkflowCoordinator`: all
        members quiesce at the boundary, the coordinator services
        steering queues and coupling transfers and makes one ensemble
        cadence decision, and a positive decision checkpoints every
        member as one workflow generation (the manifest commits only
        after all member states landed).

        Returns ``(status, delta)`` with ``reconfig_checkpoint``
        semantics: the first call of a restarted run reports
        ``(RESTARTED, delta)`` without entering the rendezvous (every
        member restarts together, so all of them skip the same
        boundary); a negative cadence decision crosses the SOP and
        returns ``(SKIPPED, 0)``; a committed line returns
        ``(TAKEN, 0)``.  ``final`` marks the run's last exchange for
        ``at_end`` policy rules."""
        rt = self.runtime
        wf = getattr(rt.app, "workflow", None)
        if wf is None:
            raise CheckpointError(
                "workflow_exchange outside a workflow: run this "
                "application through a WorkflowCoordinator"
            )
        hub, member, member_base = wf
        self._sop += 1
        rt.note_sop_crossing(self._sop, self._iteration)
        fr = get_flight()
        if fr.enabled:
            my_node = self.comm.world.placement.get(self.rank)
            fr.record(
                "sop_crossed",
                node=my_node if my_node is not None else GLOBAL_NODE,
                time=self.comm.clock.now,
                sop=self._sop, iteration=self._iteration, rank=self.rank,
                member=member,
            )
        if self._restart_pending:
            self._restart_pending = False
            self.comm.barrier()
            return (CheckpointStatus.RESTARTED, rt.restored.delta)
        outcome = self._collective(
            lambda: hub.exchange(
                member, self._iteration, self.comm.clock.now, final
            )
        )
        # charge this member's share of the coupling wire traffic
        moved = outcome["transfer_bytes"].get(member, 0)
        if moved:
            per_task = moved / max(1, self.size)
            self.comm.compute(self.comm.world.transfer_cost(int(per_task)))
        if not outcome["fire"]:
            return (CheckpointStatus.SKIPPED, 0)
        prefix = outcome["prefixes"][member]

        def take():
            seg = rt.build_segment(iteration=self._iteration, sop_id=self._sop)
            bd = rt.engine_checkpoint(prefix, seg, clock=self.comm.clock.now)
            # engine_checkpoint records the actual prefix (mlck members
            # checkpoint under a rotation base) as the newest entry
            return rt.checkpoints[-1][0], bd

        actual, bd = self._collective(take)
        if fr.enabled and self.rank == 0:
            fr.record(
                "checkpoint_taken", prefix=actual, sop=self._sop,
                time=self.comm.clock.now,
                iteration=self._iteration, seconds=bd.total_seconds,
                member=member, generation=outcome["generation"],
            )
        # Blocking checkpoint: every task waits for its member's state
        # to land before the line can commit.
        self.comm.clock.advance(bd.total_seconds)
        self._collective(
            lambda: hub.commit(
                member, actual, self.size, self._iteration,
                self.comm.clock.now, bd.total_seconds,
            )
        )
        return (CheckpointStatus.TAKEN, 0)

    def reconfig_chkenable(self, prefix: str) -> tuple:
        """``drms_reconfig_chkenable``: enabling checkpoint, taken only
        if the system (JSA) has sent an enabling signal; the signal is
        consumed by the checkpoint."""
        rt = self.runtime
        if self._restart_pending:
            return self.reconfig_checkpoint(prefix)
        enabled = self._collective(lambda: rt.consume_checkpoint_enable())
        if not enabled:
            return self._skip_sop()
        return self.reconfig_checkpoint(prefix)
