"""On-the-fly reconfiguration from volatile memory (paper §2.2).

"Applications can be reconfigured using the state of the application
from volatile memory on-the-fly or from the state saved in more
permanent storage such as in a checkpoint file."  The checkpoint path
is :meth:`~repro.drms.app.DRMSApplication.restart`; this module is the
volatile path — the one DRMS's dynamic resource management uses when
the JSA shrinks or grows a *healthy* job, where no disk I/O is needed:
at an SOP the task set is torn down, the distributed arrays are
redistributed in memory, and a new task set resumes from the same SOP.

Usage: the application marks reconfiguration points with
``ctx.reconfig_point()``; a controller (the JSA, a test, an operator)
calls :meth:`ElasticRunner.request` with a new task count; the runner
drives the run across the resulting segments::

    runner = ElasticRunner(app)
    runner.request(4)         # may also be called mid-run
    report = runner.run(8, args=(100, "ck"))
    report.segments           # [(8, t0), (4, t1), ...]

Simulated time: each segment contributes its SPMD clock; a
reconfiguration adds the in-memory redistribution cost (wire bytes over
the machine's bisection bandwidth) — *no* file-system time, which is
exactly why the volatile path is cheap (see the ablation bench).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arrays.assignment import build_schedule, schedule_bytes
from repro.checkpoint.drms import RestoredState
from repro.checkpoint.segment import DataSegment, ExecutionContext
from repro.drms.app import AppRuntime, DRMSApplication, RunReport
from repro.errors import ReconfigurationError, ReproError

__all__ = ["ReconfigExit", "ElasticReport", "ElasticRunner"]


class ReconfigExit(ReproError):
    """Control-flow signal: the task set dissolves at this SOP so the
    application can resume on ``ntasks`` tasks from in-memory state."""

    def __init__(self, ntasks: int):
        super().__init__(f"reconfiguring to {ntasks} tasks")
        self.ntasks = ntasks


@dataclass
class ElasticReport:
    """Outcome of an elastic run."""

    final: RunReport
    #: (task count, simulated seconds spent in that segment)
    segments: List[Tuple[int, float]] = field(default_factory=list)
    #: simulated seconds spent redistributing state between segments
    reconfiguration_seconds: float = 0.0

    @property
    def sim_elapsed(self) -> float:
        return sum(s for _, s in self.segments) + self.reconfiguration_seconds

    @property
    def reconfigurations(self) -> int:
        return max(0, len(self.segments) - 1)


class ElasticRunner:
    """Drives one application across on-the-fly reconfigurations."""

    def __init__(self, app: DRMSApplication):
        self.app = app
        self._lock = threading.Lock()
        self._request: Optional[int] = None

    # -- controller side ------------------------------------------------------

    def request(self, ntasks: int) -> None:
        """Ask the running application to reconfigure to ``ntasks`` at
        its next reconfiguration point."""
        self.app.soq.check(ntasks)
        with self._lock:
            self._request = ntasks

    def consume_request(self, current: int) -> Optional[int]:
        """One-shot read of a pending resize request (None when absent or equal)."""
        with self._lock:
            req = self._request
            self._request = None
        if req is None or req == current:
            return None
        return req

    # -- the driver loop ------------------------------------------------------

    def run(
        self,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        max_segments: int = 64,
    ) -> ElasticReport:
        """Drive the application across reconfiguration segments to completion."""
        app = self.app
        app.soq.check(ntasks)
        app._elastic_runner = self
        report = ElasticReport(final=None)  # type: ignore[arg-type]
        restored: Optional[RestoredState] = None
        charge = 0.0
        try:
            for _ in range(max_segments):
                runtime = AppRuntime(
                    app, ntasks, restored=restored, pending_clock_charge=charge
                )
                try:
                    result = app._execute(ntasks, runtime, args, kwargs, None)
                except ReconfigExit as exc:
                    mem = runtime.memory_state
                    if mem is None:
                        raise ReconfigurationError(
                            "reconfig point fired without captured state"
                        ) from exc
                    report.segments.append((ntasks, mem["elapsed"]))
                    restored, redis_s = self._redistribute(runtime, mem, exc.ntasks)
                    report.reconfiguration_seconds += redis_s
                    charge = redis_s
                    ntasks = exc.ntasks
                    continue
                report.segments.append((ntasks, max(result.clocks, default=0.0)))
                report.final = RunReport(
                    ntasks=ntasks,
                    returns=result.returns,
                    sim_elapsed=report.sim_elapsed,
                    checkpoints=runtime.checkpoints,
                    replicated=dict(runtime.replicated),
                    arrays=dict(runtime.arrays),
                )
                app.runs.append(report.final)
                return report
            raise ReconfigurationError(
                f"more than {max_segments} reconfigurations; livelock?"
            )
        finally:
            app._elastic_runner = None

    def _redistribute(
        self, runtime: AppRuntime, mem: Dict[str, Any], new_ntasks: int
    ) -> Tuple[RestoredState, float]:
        """In-memory redistribution of every array to the new task
        count; returns the synthetic restore state plus the simulated
        redistribution time (wire bytes over the bisection)."""
        old_ntasks = runtime.ntasks
        params = self.app.machine.params
        bisection_bps = (
            params.link_bandwidth_mbps * 1e6 * params.bisection_links
        )
        arrays = {}
        wire = 0
        for name, arr in mem["arrays"].items():
            new_dist = arr.distribution.adjust(new_ntasks)
            sched = build_schedule(arr.distribution, new_dist)
            wire += schedule_bytes(sched, arr.itemsize, remote_only=True)
            arrays[name] = arr.redistributed(new_dist)
        segment = DataSegment(
            profile=self.app.resolve_segment_profile(runtime),
            replicated=dict(mem["replicated"]),
            context=ExecutionContext(
                sop_id=mem["sop_id"],
                iteration=mem["iteration"],
                control=dict(mem["control"]),
            ),
        )
        state = RestoredState(
            segment=segment,
            arrays=arrays,
            ntasks=new_ntasks,
            checkpoint_ntasks=old_ntasks,
            manifest={"kind": "memory"},
        )
        return state, params.link_latency_s + wire / bisection_bps
