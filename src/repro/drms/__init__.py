"""The DRMS programming model and run-time API (the paper's core).

The model extends SPMD with schedulable-and-observable quanta and
points (SOQs/SOPs): applications declare their distributed arrays and
replicated variables, mark reconfiguration points, and in return the
runtime can capture their state in a task-count-independent form —
enabling checkpoint, reconfigured restart, migration, and steering.

Public surface:

* :class:`~repro.drms.app.DRMSApplication` — build/run/checkpoint/
  restart an SPMD application written against the DRMS API;
* :class:`~repro.drms.context.DRMSContext` — the per-task handle whose
  methods mirror the paper's Fortran API (``drms_initialize``,
  ``drms_create_distribution``, ``drms_distribute``, ``drms_adjust``,
  ``drms_reconfig_checkpoint``, ``drms_reconfig_chkenable``);
* :mod:`~repro.drms.nonconforming` — the checkpoint API for
  applications that do not conform to the DRMS model (per-task SPMD
  checkpointing; no reconfigured restart);
* :mod:`~repro.drms.steering` and :mod:`~repro.drms.mpmd` — the other
  capabilities built on the array-assignment primitive.
"""

from repro.drms.context import CheckpointStatus, DRMSContext
from repro.drms.app import AppRuntime, DRMSApplication, RunReport
from repro.drms.elastic import ElasticReport, ElasticRunner
from repro.drms.soq import SOQSpec
from repro.drms.api import (
    drms_initialize,
    drms_create_distribution,
    drms_distribute,
    drms_adjust,
    drms_reconfig_checkpoint,
    drms_reconfig_chkenable,
    drms_policy_checkpoint,
)

__all__ = [
    "CheckpointStatus",
    "DRMSContext",
    "AppRuntime",
    "DRMSApplication",
    "RunReport",
    "ElasticRunner",
    "ElasticReport",
    "SOQSpec",
    "drms_initialize",
    "drms_create_distribution",
    "drms_distribute",
    "drms_adjust",
    "drms_reconfig_checkpoint",
    "drms_reconfig_chkenable",
    "drms_policy_checkpoint",
]
