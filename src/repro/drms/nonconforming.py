"""Checkpointing for applications that do NOT conform to the DRMS model.

The DRMS environment also checkpoints plain message-passing SPMD
applications (paper Section 3): the programmer still marks checkpoint
points and all tasks synchronize there, but because the application does
not expose its distributed data structures, *each task's state is saved
(and restored) separately* — and a reconfigured restart is impossible.
This is the comparison baseline measured as the "SPMD version".

Usage inside a plain SPMD ``main(ctx, ...)``::

    ck = SPMDCheckpointer(pfs, segment_bytes=...)   # shared, via closure
    ...
    ck.checkpoint(comm, "prefix", payload={"u_local": u, "it": it})

and for restart the driver calls :func:`restore_spmd` to obtain the
per-task payloads, which it passes back into the application.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.checkpoint.drms import CheckpointBreakdown, RestartBreakdown
from repro.checkpoint.spmd import SPMDRestoredState, spmd_checkpoint, spmd_restart
from repro.pfs.piofs import PIOFS
from repro.runtime.comm import TaskComm

__all__ = ["SPMDCheckpointer", "restore_spmd"]


class SPMDCheckpointer:
    """Coordinates per-task checkpoints of a non-conforming application.

    All tasks call :meth:`checkpoint` at the same program point with
    their private payloads; the tasks synchronize, every task's segment
    is written to its own file, and every task is charged the blocking
    checkpoint time.
    """

    def __init__(self, pfs: PIOFS, segment_bytes: int, app_name: str = "spmd-app"):
        self.pfs = pfs
        self.segment_bytes = int(segment_bytes)
        self.app_name = app_name
        self.breakdowns: List[Tuple[str, CheckpointBreakdown]] = []
        self._lock = threading.Lock()
        self._slots: dict = {}

    def checkpoint(self, comm: TaskComm, prefix: str, payload: Any) -> CheckpointBreakdown:
        """Collective: every task contributes its state; one write phase
        covers all task files (they proceed concurrently, then
        synchronize at the end, per the paper's measurement setup)."""
        payloads = comm.gather(payload, root=0)
        if comm.rank == 0:
            bd = spmd_checkpoint(
                self.pfs,
                prefix,
                ntasks=comm.size,
                segment_bytes=self.segment_bytes,
                payloads=payloads,
                app_name=self.app_name,
            )
            with self._lock:
                self._slots[prefix] = bd
                self.breakdowns.append((prefix, bd))
        comm.barrier()
        with self._lock:
            bd = self._slots[prefix]
        comm.clock.advance(bd.total_seconds)
        comm.barrier()
        return bd


def restore_spmd(
    pfs: PIOFS, prefix: str, ntasks: int
) -> Tuple[SPMDRestoredState, RestartBreakdown]:
    """Driver-side restore.  Raises
    :class:`~repro.errors.RestartError` unless ``ntasks`` equals the
    checkpointing task count — non-conforming applications cannot be
    reconfigured at restart."""
    return spmd_restart(pfs, prefix, ntasks)
