"""Schedulable and observable quanta (SOQs) and points (SOPs).

A DRMS application executes a series of SOQs separated by SOPs; each
SOQ has four sections (paper Section 2.1):

* **resource** — the valid range of task counts;
* **data**     — the decomposition of the global data set;
* **control**  — values of the control variables steering execution;
* **computation** — the computations/communications themselves.

The set of tasks is fixed within an SOQ and may change only at an SOP —
the globally consistent points where checkpoints and reconfigurations
happen.  :class:`SOQSpec` carries the resource section declaratively so
the runtime (and the JSA scheduler) can validate task counts before
starting or reconfiguring an application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReconfigurationError

__all__ = ["SOQSpec"]


@dataclass(frozen=True)
class SOQSpec:
    """Resource requirements of an application's SOQs.

    ``divides`` optionally constrains valid counts to divisors/multiples
    structure common in grid codes (e.g., BT wants square task counts —
    encode such constraints via ``validator``).
    """

    min_tasks: int = 1
    max_tasks: Optional[int] = None
    #: optional extra predicate on the task count
    validator: Optional[object] = None
    name: str = "soq"

    def check(self, ntasks: int) -> None:
        """Raise :class:`ReconfigurationError` unless ``ntasks`` is in
        the resource section's valid range."""
        if ntasks < self.min_tasks:
            raise ReconfigurationError(
                f"{self.name}: {ntasks} tasks below minimum {self.min_tasks}"
            )
        if self.max_tasks is not None and ntasks > self.max_tasks:
            raise ReconfigurationError(
                f"{self.name}: {ntasks} tasks above maximum {self.max_tasks}"
            )
        if self.validator is not None and not self.validator(ntasks):
            raise ReconfigurationError(
                f"{self.name}: task count {ntasks} rejected by resource validator"
            )

    def valid(self, ntasks: int) -> bool:
        """True when the task count satisfies the resource section."""
        try:
            self.check(ntasks)
            return True
        except ReconfigurationError:
            return False
