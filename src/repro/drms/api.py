"""Procedural aliases matching the paper's API names (Table 2).

These are thin wrappers over :class:`~repro.drms.context.DRMSContext`
methods so that ported code can read like the Fortran skeleton of
Fig. 1::

    status = drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (nx, ny, nz), shadow=(2, 2, 2))
    u = drms_distribute(ctx, "u", dist)
    ...
    status, delta = drms_reconfig_checkpoint(ctx, prefix)
    if status is CheckpointStatus.RESTARTED and delta != 0:
        dist = drms_adjust(ctx, "u")
        u = drms_distribute(ctx, "u", dist)
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.drms.context import CheckpointStatus, DRMSContext, TaskArrayView

__all__ = [
    "drms_initialize",
    "drms_create_distribution",
    "drms_distribute",
    "drms_adjust",
    "drms_reconfig_checkpoint",
    "drms_reconfig_chkenable",
    "drms_policy_checkpoint",
]


def drms_initialize(ctx: DRMSContext) -> CheckpointStatus:
    """Initialize the run-time; at a restart the checkpointed state has
    been loaded and execution will continue from the checkpoint."""
    return ctx.initialize()


def drms_create_distribution(
    ctx: DRMSContext,
    shape: Sequence[int],
    axes: Optional[Sequence] = None,
    shadow: Optional[Sequence[int]] = None,
    grid: Optional[Sequence[int]] = None,
):
    """Declare how an array of ``shape`` is distributed over the tasks
    (default BLOCK along every dimension, as in Fig. 1)."""
    return ctx.create_distribution(shape, axes=axes, shadow=shadow, grid=grid)


def drms_distribute(
    ctx: DRMSContext,
    name: str,
    distribution,
    dtype: Any = float,
    init_global: Any = None,
    init_local: Any = None,
) -> TaskArrayView:
    """Distribute (or, after restart, redistribute) the named array."""
    return ctx.distribute(
        name,
        distribution,
        dtype=dtype,
        init_global=init_global,
        init_local=init_local,
    )


def drms_adjust(ctx: DRMSContext, name: str):
    """Adjust the stored distribution of ``name`` to the current task
    count (used after a reconfigured restart, when ``delta != 0``)."""
    return ctx.adjust(name)


def drms_reconfig_checkpoint(ctx: DRMSContext, prefix: str):
    """Mandatory checkpoint: always taken.  Returns ``(status, delta)``."""
    return ctx.reconfig_checkpoint(prefix)


def drms_reconfig_chkenable(ctx: DRMSContext, prefix: str):
    """Enabling checkpoint: taken only at system discretion (after
    :meth:`~repro.drms.app.DRMSApplication.enable_checkpoint`)."""
    return ctx.reconfig_chkenable(prefix)


def drms_policy_checkpoint(
    ctx: DRMSContext,
    prefix: str,
    policy=None,
    final: bool = False,
    enable_mode: bool = False,
):
    """Cadence decision point: the attached
    :class:`~repro.policy.engine.CheckpointPolicy` decides whether this
    SOP checkpoints.  Returns ``(status, delta)``."""
    return ctx.policy_checkpoint(
        prefix, policy=policy, final=final, enable_mode=enable_mode
    )
