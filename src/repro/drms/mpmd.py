"""MPMD applications: coordinated collections of SPMD structures.

The paper (Section 2.2) views an MPMD computation as a small collection
of SPMD control structures, each with its own distributed data set; the
components reconfigure individually or collectively, and a globally
consistent checkpoint is a *set* of SOPs — one per component.

:class:`MPMDApplication` composes named
:class:`~repro.drms.app.DRMSApplication` components that share one
machine and one parallel file system.  A coordinated checkpoint stores
each component under ``<prefix>.<component>`` plus a group manifest;
restart re-launches every component, each on its own (possibly new)
task count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.format import manifest_name
from repro.drms.app import DRMSApplication, RunReport
from repro.errors import ReconfigurationError, RestartError
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine
from repro.workflow.manifest import check_member_name, newest_consistent_generations

__all__ = ["MPMDApplication", "MPMDRunReport"]

_GROUP_SUFFIX = ".mpmd"


@dataclass
class MPMDRunReport:
    """Per-component reports of one MPMD run."""

    components: Dict[str, RunReport] = field(default_factory=dict)

    @property
    def sim_elapsed(self) -> float:
        """MPMD wall time: the slowest component."""
        return max((r.sim_elapsed for r in self.components.values()), default=0.0)


class MPMDApplication:
    """A set of named SPMD components run as one application."""

    def __init__(self, machine: Optional[Machine] = None, pfs: Optional[PIOFS] = None):
        self.machine = machine or Machine()
        self.pfs = pfs or PIOFS(machine=self.machine)
        self._components: Dict[str, Tuple[DRMSApplication, tuple, dict]] = {}

    def add_component(
        self,
        name: str,
        main,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        **app_options: Any,
    ) -> DRMSApplication:
        """Register an SPMD component (its ``main`` plus fixed args).
        Component checkpoint prefixes are namespaced automatically; the
        name rules of
        :func:`~repro.workflow.manifest.check_member_name` keep the
        namespaces disjoint (a dotted or six-digit name would alias
        another component's checkpoint files)."""
        check_member_name(name, taken=self._components)
        app = DRMSApplication(
            main, name=name, machine=self.machine, pfs=self.pfs, **app_options
        )
        self._components[name] = (app, tuple(args), dict(kwargs or {}))
        return app

    @property
    def component_names(self) -> List[str]:
        return list(self._components)

    def component(self, name: str) -> DRMSApplication:
        return self._components[name][0]

    def _component_prefix(self, prefix: str, name: str) -> str:
        return f"{prefix}.{name}"

    # -- running -----------------------------------------------------------------

    def start(self, tasks: Dict[str, int]) -> MPMDRunReport:
        """Run every component on its own task count.  The degenerate
        single-task component is allowed (paper Section 2.2)."""
        self._check_tasks(tasks)
        report = MPMDRunReport()
        for name, (app, args, kwargs) in self._components.items():
            report.components[name] = app.start(tasks[name], args=args, kwargs=kwargs)
        return report

    def checkpointed_start(self, tasks: Dict[str, int], prefix: str) -> MPMDRunReport:
        """Run all components (each taking its own checkpoints under its
        namespaced prefix) and record the group manifest, making the set
        of per-component SOPs one globally consistent MPMD checkpoint."""
        report = self.start(
            {n: tasks[n] for n in self._components}
        )
        group = {
            "components": {
                name: {
                    "prefix": self._component_prefix(prefix, name),
                    "ntasks": tasks[name],
                }
                for name in self._components
            }
        }
        self.pfs.create(prefix + _GROUP_SUFFIX, virtual=False)
        self.pfs.write_at(prefix + _GROUP_SUFFIX, 0, json.dumps(group).encode())
        return report

    def restart(self, prefix: str, tasks: Dict[str, int]) -> MPMDRunReport:
        """Restart every component from its namespaced checkpoint, each
        with an independently chosen new task count (components
        reconfigure individually or collectively).

        The component states must form one **consistent logical
        generation**: when the components keep rotated generations under
        their namespaces (``<prefix>.<name>.NNNNNN``), the set restarted
        from is resolved *jointly* — the newest generation number at
        which every component is byte-valid — instead of each component
        falling back newest-to-oldest on its own, which could silently
        mix generations when one component's newest state is torn."""
        self._check_tasks(tasks)
        resolved = self._resolve_component_states(prefix)
        report = MPMDRunReport()
        for name, (app, args, kwargs) in self._components.items():
            report.components[name] = app.restart(
                resolved[name],
                tasks[name],
                args=args,
                kwargs=kwargs,
            )
        return report

    def _has_state(self, app: DRMSApplication, prefix: str) -> bool:
        """A restartable state exists at exactly ``prefix`` (a committed
        PFS manifest, or an L1 generation of a memory-tier component)."""
        if self.pfs.exists(manifest_name(prefix)):
            return True
        return any(ck.store.has(prefix) for ck in app._mlck.values())

    def _resolve_component_states(self, prefix: str) -> Dict[str, str]:
        """The per-component restart prefixes under ``prefix``.

        When every component has a state at its exact namespaced prefix
        (un-rotated coordinated checkpoints), that set *is* the logical
        generation.  Otherwise the components checkpointed under
        rotating generation numbers, and the set is resolved through the
        workflow-manifest validation walk
        (:func:`~repro.workflow.manifest.newest_consistent_generations`):
        the newest number at which every component verifies, torn
        numbers rejected as a unit."""
        exact = {
            name: self._component_prefix(prefix, name)
            for name in self._components
        }
        if all(
            self._has_state(app, exact[name])
            for name, (app, _, _) in self._components.items()
        ):
            return exact
        l1_stores = {
            name: app.l1_store_for(exact[name])
            for name, (app, _, _) in self._components.items()
        }
        resolved, rejected = newest_consistent_generations(
            self.pfs, exact, l1_stores
        )
        if resolved is None:
            detail = "; ".join(
                f"gen {g}: {errs[0]}" for g, errs in rejected[:3]
            )
            raise RestartError(
                f"no MPMD generation under {prefix!r} has every "
                "component byte-valid" + (f" ({detail})" if detail else "")
            )
        return resolved

    def _check_tasks(self, tasks: Dict[str, int]) -> None:
        missing = set(self._components) - set(tasks)
        if missing:
            raise ReconfigurationError(
                f"no task counts for MPMD components {sorted(missing)}"
            )
        for name, n in tasks.items():
            if name in self._components:
                self._components[name][0].soq.check(n)
