"""Application runtime and driver: build, run, checkpoint, restart.

:class:`DRMSApplication` is what a user constructs around an SPMD
``main(ctx, ...)`` function written against the
:class:`~repro.drms.context.DRMSContext` API.  It owns the persistent
pieces (machine, parallel file system, resource spec) and runs the
application on any valid task count — fresh (:meth:`start`) or from a
checkpointed state (:meth:`restart`), with an equal, larger, or smaller
task pool.

:class:`AppRuntime` is the per-run shared state the task contexts
coordinate through: the distributed-array registry, replicated
variables, the SOQ control section, and the checkpoint engine hooks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    RestoredState,
    drms_checkpoint,
    drms_restart,
)
from repro.checkpoint.segment import DataSegment, ExecutionContext, SegmentProfile
from repro.drms.context import DRMSContext
from repro.drms.soq import SOQSpec
from repro.errors import ReconfigurationError
from repro.pfs.piofs import PIOFS
from repro.runtime.executor import SPMDResult, run_spmd
from repro.runtime.machine import Machine

__all__ = ["AppRuntime", "RunReport", "DRMSApplication"]


class AppRuntime:
    """Shared per-run state for one application execution."""

    def __init__(
        self,
        app: "DRMSApplication",
        ntasks: int,
        restored: Optional[RestoredState] = None,
        pending_clock_charge: float = 0.0,
    ):
        self.app = app
        self.ntasks = ntasks
        self.pfs = app.pfs
        self.store_data = app.store_data
        self.restored = restored
        self.pending_clock_charge = pending_clock_charge
        #: armed by the cluster/failure injector; see DRMSContext._maybe_fail
        self.failure_plan = app.failure_plan
        self.arrays: Dict[str, Any] = {}
        self.replicated: Dict[str, Any] = (
            dict(restored.segment.replicated) if restored else {}
        )
        self.control: Dict[str, Any] = (
            dict(restored.segment.context.control) if restored else {}
        )
        self.checkpoints: List[Tuple[str, CheckpointBreakdown]] = []
        #: the application's cadence policy and this run's private rule
        #: state (fresh per run, so a restart re-anchors every schedule)
        self.policy = app.policy
        self.policy_state: Dict[str, Any] = {}
        self._restored_pool: Dict[str, Any] = dict(restored.arrays) if restored else {}
        self._coll_result: Any = None
        self._lock = threading.Lock()
        #: volatile state captured at a reconfiguration point (see
        #: repro.drms.elastic)
        self.memory_state: Optional[Dict[str, Any]] = None
        #: last synchronization point the tasks crossed — the quiesce
        #: anchor of a localized recovery (survivors pause *here*)
        self.last_sop: int = 0
        self.last_sop_iteration: Optional[int] = None

    def note_sop_crossing(self, sop_id: int, iteration: int) -> None:
        """Record that the task group crossed a SOP (the localized
        recovery protocol quiesces survivors at the next one)."""
        self.last_sop = sop_id
        self.last_sop_iteration = iteration

    def capture_memory_state(self, iteration: int, sop_id: int, elapsed: float) -> None:
        """Snapshot the live application state for an on-the-fly
        reconfiguration (no file I/O; the arrays move by reference)."""
        self.memory_state = {
            "arrays": dict(self.arrays),
            "replicated": dict(self.replicated),
            "control": dict(self.control),
            "iteration": iteration,
            "sop_id": sop_id,
            "elapsed": elapsed,
        }

    # -- restored-array handoff ------------------------------------------------

    def take_restored_array(self, name: str):
        """Claim a restored array for (re)binding; one-shot per name."""
        with self._lock:
            return self._restored_pool.pop(name, None)

    def peek_restored_array(self, name: str):
        with self._lock:
            return self._restored_pool.get(name)

    # -- checkpoint plumbing ------------------------------------------------------

    def build_segment(self, iteration: int, sop_id: int) -> DataSegment:
        """Assemble the DataSegment captured by a checkpoint at this SOP."""
        profile = self.app.resolve_segment_profile(self)
        return DataSegment(
            profile=profile,
            replicated=dict(self.replicated),
            context=ExecutionContext(
                sop_id=sop_id, iteration=iteration, control=dict(self.control)
            ),
        )

    def engine_checkpoint(
        self, prefix: str, segment: DataSegment, clock: float = 0.0
    ) -> CheckpointBreakdown:
        """Run the DRMS checkpoint engine over the live array registry.

        Under ``tier="memory+pfs"`` the state is captured into the
        application's multi-level checkpointer: ``prefix`` acts as the
        rotation base, the application blocks only for the memory-speed
        L1 capture, and the PFS drain runs behind its back.  ``clock``
        (the caller's simulated seconds) stamps the captured generation
        for the cadence health gauges."""
        if self.app.tier == "memory+pfs":
            ck = self.app.mlck_for(prefix)
            mbd = ck.checkpoint(segment, list(self.arrays.values()), clock=clock)
            self.checkpoints.append((mbd.prefix, mbd.capture))
            return mbd.capture
        bd = drms_checkpoint(
            self.pfs,
            prefix,
            segment,
            list(self.arrays.values()),
            order=self.app.order,
            io_tasks=self.app.io_tasks,
            target_bytes=self.app.target_bytes,
            app_name=self.app.name,
        )
        self.checkpoints.append((prefix, bd))
        return bd

    def consume_checkpoint_enable(self) -> bool:
        """One-shot read of the system's enabling signal."""
        return self.app.consume_checkpoint_enable()


@dataclass
class RunReport:
    """Outcome of one application run."""

    ntasks: int
    returns: List[Any]
    #: simulated wall time of the whole run, seconds
    sim_elapsed: float
    checkpoints: List[Tuple[str, CheckpointBreakdown]]
    restarted_from: Optional[str] = None
    restart_breakdown: Optional[RestartBreakdown] = None
    replicated: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, Any] = field(default_factory=dict)
    #: set by localized recovery: the RebuildScope the restart rebuilt
    rebuild_scope: Optional[Any] = None

    @property
    def checkpoint_seconds(self) -> float:
        return sum(bd.total_seconds for _, bd in self.checkpoints)


class DRMSApplication:
    """A reconfigurable, checkpointable SPMD application."""

    def __init__(
        self,
        main: Callable[..., Any],
        name: str = "app",
        machine: Optional[Machine] = None,
        pfs: Optional[PIOFS] = None,
        soq: Optional[SOQSpec] = None,
        segment_profile: Optional[SegmentProfile | Callable[[AppRuntime], SegmentProfile]] = None,
        store_data: bool = True,
        order: str = "F",
        io_tasks: Optional[int] = None,
        target_bytes: int = 1 << 20,
        run_timeout: float = 300.0,
        comm_timeout: float = 60.0,
        tier: str = "pfs",
        mlck_k: int = 1,
        mlck_keep: int = 2,
        mlck_drain: str = "async",
        policy: Optional[Any] = None,
    ):
        if tier not in ("pfs", "memory+pfs"):
            raise ReconfigurationError(
                f"unknown application checkpoint tier {tier!r} "
                "(expected 'pfs' or 'memory+pfs')"
            )
        self.main = main
        self.name = name
        self.machine = machine or Machine()
        self.pfs = pfs or PIOFS(machine=self.machine)
        self.soq = soq or SOQSpec(name=name)
        self.segment_profile = segment_profile
        self.store_data = store_data
        self.order = order
        self.io_tasks = io_tasks
        self.target_bytes = target_bytes
        self.run_timeout = run_timeout
        self.comm_timeout = comm_timeout
        #: checkpoint store tier: "pfs" writes the PFS directly;
        #: "memory+pfs" captures into the replicated L1 memory tier and
        #: drains to the PFS asynchronously (repro.mlck)
        self.tier = tier
        self.mlck_k = mlck_k
        self.mlck_keep = mlck_keep
        self.mlck_drain = mlck_drain
        #: checkpoint-cadence policy driving ``ctx.policy_checkpoint``
        #: (a :class:`~repro.policy.engine.CheckpointPolicy`, or None
        #: when the application decides its own cadence)
        self.policy = policy
        #: one MultiLevelCheckpointer per checkpoint base prefix
        self._mlck: Dict[str, Any] = {}
        #: optional cluster EventLog (wired by DRMSCluster.build_app) —
        #: receives mlck placement-fallback and tier-selection events
        self.events = None
        #: optional HealthRegistry (wired by DRMSCluster.build_app) —
        #: attached to each mlck drain controller so drain completion
        #: re-samples the backlog gauges
        self.health = None
        self._ckpt_enable = threading.Event()
        self.runs: List[RunReport] = []
        #: optional armed FailurePlan (set by the failure injector)
        self.failure_plan = None
        #: live-steering queue; clients read/write fields of a running
        #: application at its steering points
        from repro.drms.steering import SteeringHub

        self.steering = SteeringHub(order=order)
        #: workflow binding while running under a
        #: :class:`~repro.workflow.coordinator.WorkflowCoordinator`:
        #: ``(hub, member_name, member_base)``, or None standalone
        self.workflow = None
        #: active ElasticRunner, when running under on-the-fly
        #: reconfiguration (repro.drms.elastic)
        self._elastic_runner = None
        #: runtime of the most recent (possibly crashed) execution —
        #: where the localized recovery protocol reads the quiesce SOP
        self._last_runtime: Optional[AppRuntime] = None

    # -- multi-level checkpoint store (tier="memory+pfs") --------------------

    def mlck_for(self, base: str):
        """The :class:`~repro.mlck.checkpointer.MultiLevelCheckpointer`
        owning generations under ``base`` (created on first use)."""
        if base not in self._mlck:
            from repro.mlck.checkpointer import MultiLevelCheckpointer

            self._mlck[base] = MultiLevelCheckpointer(
                self.pfs,
                base,
                machine=self.machine,
                k=self.mlck_k,
                keep=self.mlck_keep,
                order=self.order,
                target_bytes=self.target_bytes,
                io_tasks=self.io_tasks,
                app_name=self.name,
                events=self.events,
                drain=self.mlck_drain,
            )
            self._mlck[base].drainer.health = self.health
        return self._mlck[base]

    def l1_store_for(self, base: str):
        """The L1 store under ``base``, or None (PFS-tier application,
        or nothing checkpointed there yet) — what recovery passes as the
        ``l1`` of a tier-aware restart-state walk."""
        if self.tier != "memory+pfs":
            return None
        ck = self._mlck.get(base)
        return ck.store if ck is not None else None

    def on_node_failure(self, node_id: int, clock: float = 0.0) -> int:
        """A processor died: its volatile L1 memory — and every
        checkpoint replica it held — dies with it.  Returns the number
        of replica copies lost across all checkpoint bases."""
        return sum(
            ck.on_node_failure(node_id, clock=clock)
            for ck in self._mlck.values()
        )

    def wait_for_drains(self, timeout: Optional[float] = None) -> None:
        """Block until every queued L1->PFS drain has finished."""
        for ck in self._mlck.values():
            ck.wait_for_drains(timeout=timeout)

    def sop_quiescence(self) -> Optional[Dict[str, Any]]:
        """Where survivors quiesce after a failure: the last SOP the
        (possibly crashed) run crossed, or None before any crossing."""
        rt = self._last_runtime
        if rt is None or rt.last_sop_iteration is None:
            return None
        return {"sop": rt.last_sop, "iteration": rt.last_sop_iteration}

    # -- system-initiated checkpoint signal (used with reconfig_chkenable) ---

    def enable_checkpoint(self) -> None:
        """Send the enabling signal: the next ``reconfig_chkenable``
        call in the application takes a checkpoint (JSA hook)."""
        self._ckpt_enable.set()

    def consume_checkpoint_enable(self) -> bool:
        """One-shot read of the enabling signal (application side)."""
        if self._ckpt_enable.is_set():
            self._ckpt_enable.clear()
            return True
        return False

    # -- segment profile ------------------------------------------------------------

    def resolve_segment_profile(self, runtime: AppRuntime) -> SegmentProfile:
        """The SegmentProfile for checkpoints of this application."""
        if isinstance(self.segment_profile, SegmentProfile):
            return self.segment_profile
        if callable(self.segment_profile):
            return self.segment_profile(runtime)
        # Default: local-section storage of task 0 under the current
        # distributions; no modeled system/private bulk.
        local = sum(a.nbytes_local(0) for a in runtime.arrays.values())
        return SegmentProfile(
            local_section_bytes=local, system_bytes=0, private_bytes=0
        )

    # -- running ----------------------------------------------------------------------

    def _execute(
        self,
        ntasks: int,
        runtime: AppRuntime,
        args: Sequence[Any],
        kwargs: Optional[dict],
        nodes: Optional[Sequence[int]],
    ) -> SPMDResult:
        return run_spmd(
            self.main,
            ntasks,
            machine=self.machine,
            args=args,
            kwargs=kwargs,
            nodes=nodes,
            timeout=self.run_timeout,
            comm_timeout=self.comm_timeout,
            make_context=lambda comm: DRMSContext(comm, runtime),
        )

    def start(
        self,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        nodes: Optional[Sequence[int]] = None,
    ) -> RunReport:
        """Run the application from the beginning on ``ntasks`` tasks."""
        self.soq.check(ntasks)
        runtime = AppRuntime(self, ntasks)
        self._last_runtime = runtime
        result = self._execute(ntasks, runtime, args, kwargs, nodes)
        report = RunReport(
            ntasks=ntasks,
            returns=result.returns,
            sim_elapsed=result.elapsed,
            checkpoints=runtime.checkpoints,
            replicated=dict(runtime.replicated),
            arrays=dict(runtime.arrays),
        )
        self.runs.append(report)
        return report

    def restart(
        self,
        prefix: str,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        nodes: Optional[Sequence[int]] = None,
    ) -> RunReport:
        """Restart from the checkpointed state under ``prefix`` on a new
        task pool of ``ntasks`` (equal, larger, or smaller than the
        checkpointing pool).

        Under ``tier="memory+pfs"``, ``prefix`` (typically a rotation
        generation chosen by the tier-aware recovery walk) is served
        from surviving L1 memory replicas when they validate — no PFS
        checkpoint read at all — and from the PFS copy otherwise."""
        self.soq.check(ntasks)
        state = bd = None
        if self.tier == "memory+pfs":
            for ck in self._mlck.values():
                if ck.store.has(prefix):
                    ck.store.sync_with_machine()
                    if ck.store.validate_generation(prefix).ok:
                        state, bd = ck.store.restore_drms(
                            prefix,
                            ntasks,
                            init_seconds=self.pfs.params.restart_init_s,
                        )
                    break
        if state is None:
            state, bd = drms_restart(
                self.pfs,
                prefix,
                ntasks,
                order=self.order,
                io_tasks=self.io_tasks,
                target_bytes=self.target_bytes,
            )
        runtime = AppRuntime(
            self,
            ntasks,
            restored=state,
            pending_clock_charge=bd.total_seconds,
        )
        self._last_runtime = runtime
        result = self._execute(ntasks, runtime, args, kwargs, nodes)
        report = RunReport(
            ntasks=ntasks,
            returns=result.returns,
            sim_elapsed=result.elapsed,
            checkpoints=runtime.checkpoints,
            restarted_from=prefix,
            restart_breakdown=bd,
            replicated=dict(runtime.replicated),
            arrays=dict(runtime.arrays),
        )
        self.runs.append(report)
        return report

    def restart_localized(
        self,
        prefix: str,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        nodes: Optional[Sequence[int]] = None,
        placement: Optional[Dict[int, int]] = None,
        failed_nodes: Sequence[int] = (),
        replacements: Optional[Dict[int, int]] = None,
    ) -> RunReport:
        """Localized restart after a node failure: every task rolls back
        to the generation under ``prefix``, but the data movement is
        survivor-local — each surviving rank reloads its section from
        its own node's L1 replica memory, only the lost ranks'
        (``placement`` entries on ``failed_nodes``) sections cross the
        switch to their ``replacements`` — and the lost replicas are
        re-placed outside the replacement nodes' failure domains.  When
        the L1 generation cannot serve (the failure took every copy of
        some piece), survivors' own state of that generation is gone
        too, and the restart degrades to a full, metered PFS read."""
        from repro.mlck.localized import (
            compute_rebuild_scope,
            localized_restore_drms,
            rereplicate_after_failure,
        )
        from repro.obs import get_tracer

        self.soq.check(ntasks)
        placement = dict(placement or {})
        replacements = dict(replacements or {})
        state = bd = scope = None
        if self.tier == "memory+pfs":
            for ck in self._mlck.values():
                if ck.store.has(prefix):
                    ck.store.sync_with_machine()
                    if ck.store.validate_generation(prefix).ok:
                        state, bd, scope = localized_restore_drms(
                            ck.store, prefix, ntasks,
                            placement, failed_nodes,
                            replacements=replacements,
                            init_seconds=self.pfs.params.restart_init_s,
                        )
                        avoid = sorted(
                            {
                                self.machine.domain_of(n)
                                for n in replacements.values()
                                if 0 <= n < self.machine.num_nodes
                            }
                        )
                        rereplicate_after_failure(
                            ck.store, failed_nodes, avoid_domains=avoid
                        )
                    break
        if state is None:
            state, bd = drms_restart(
                self.pfs,
                prefix,
                ntasks,
                order=self.order,
                io_tasks=self.io_tasks,
                target_bytes=self.target_bytes,
            )
            scope = compute_rebuild_scope(
                dict(state.manifest, prefix=prefix),
                ntasks, placement, failed_nodes,
                replacements=replacements, order=self.order,
            )
            get_tracer().metrics.counter(
                "mlck.localized.pfs_fallbacks"
            ).inc()
        runtime = AppRuntime(
            self,
            ntasks,
            restored=state,
            pending_clock_charge=bd.total_seconds,
        )
        self._last_runtime = runtime
        result = self._execute(ntasks, runtime, args, kwargs, nodes)
        report = RunReport(
            ntasks=ntasks,
            returns=result.returns,
            sim_elapsed=result.elapsed,
            checkpoints=runtime.checkpoints,
            restarted_from=prefix,
            restart_breakdown=bd,
            replicated=dict(runtime.replicated),
            arrays=dict(runtime.arrays),
            rebuild_scope=scope,
        )
        self.runs.append(report)
        return report
