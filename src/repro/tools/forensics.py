"""Failure forensics CLI: black boxes, timelines, health, diffs.

Usage::

    python -m repro.tools.forensics dump     [--out DIR] [--node N]
                                             [--iteration K] [--ntasks P]
    python -m repro.tools.forensics timeline [INCIDENT] [--max-entries M]
    python -m repro.tools.forensics health   [INCIDENT]
    python -m repro.tools.forensics diff     A B

``dump`` runs the built-in failure scenario — an iterative solver
checkpointing into the multi-level (``memory+pfs``) store on an
8-node cluster, killed mid-run by a
:class:`~repro.infra.failure.FailurePlan` — under a live flight
recorder, then writes the full forensic record under ``--out``:

* ``incident.json``        — the incident dump (events + black boxes +
  recovery outcome + health + metrics; schema ``repro.forensics/1``);
* ``blackbox_node<N>.json`` — the dead node's black-box ring;
* ``metrics.om``           — health gauges and counters in OpenMetrics
  text, scrapable by standard tooling.

``timeline`` reconstructs and prints the failure -> tiered-restart
story (phase latencies attributed, rejections listed) from an incident
dump — or, with no argument, from a fresh demo run.  ``health`` prints
the fleet-health gauges the same way.  ``diff`` compares two incident
dumps phase by phase.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.infra import DRMSCluster, FailurePlan
from repro.obs import (
    FlightRecorder,
    Tracer,
    diff_incidents,
    load_incident,
    make_incident,
    reconstruct_timeline,
    render_diff,
    render_timeline,
    use_flight,
    use_tracer,
    write_incident,
    write_openmetrics,
)
from repro.runtime.machine import Machine, MachineParams

__all__ = ["run_demo_incident", "main"]

_N = 10
_NITER = 12


def _solver(ctx, base):
    import numpy as np

    from repro.drms.api import (
        drms_adjust,
        drms_create_distribution,
        drms_distribute,
        drms_initialize,
        drms_reconfig_checkpoint,
    )
    from repro.drms.context import CheckpointStatus

    drms_initialize(ctx)
    dist = drms_create_distribution(ctx, (_N, _N), shadow=(1, 1))
    u = drms_distribute(ctx, "u", dist, init_global=np.ones((_N, _N)))
    for it in ctx.iterations(1, _NITER + 1):
        if it % 4 == 1:
            status, delta = drms_reconfig_checkpoint(ctx, base)
            if status is CheckpointStatus.RESTARTED and delta != 0:
                u = drms_distribute(ctx, "u", drms_adjust(ctx, "u"))
        u.set_assigned(u.assigned + 1.0)
        ctx.barrier()
    return float(u.assigned.sum())


def run_demo_incident(node: int = 3, iteration: int = 7, ntasks: int = 8):
    """Run the built-in FailurePlan scenario under a flight recorder
    and a tracer; returns ``(incident, recorder, cluster)``."""
    cluster = DRMSCluster(machine=Machine(MachineParams(num_nodes=8)))
    app = cluster.build_app(_solver, tier="memory+pfs", mlck_drain="sync")
    with use_tracer(Tracer()) as tracer:
        with use_flight(FlightRecorder()) as recorder:
            out = cluster.run_with_recovery(
                "demo", app, ntasks, args=("ck",), prefix="ck",
                failure=FailurePlan(iteration=iteration, node_id=node),
            )
            recorder.publish_metrics()
            incident = make_incident(
                out.events,
                flight=recorder,
                outcome=out,
                health=cluster.health,
                metrics=tracer.metrics,
                tracer=tracer,
                job="demo",
            )
    return incident, recorder, cluster


def _load_or_demo(path):
    if path is None:
        print("no incident file given: running the demo scenario\n")
        incident, _, _ = run_demo_incident()
        return incident
    return load_incident(path)


def _cmd_dump(args) -> int:
    incident, recorder, cluster = run_demo_incident(
        node=args.node, iteration=args.iteration, ntasks=args.ntasks
    )
    out = pathlib.Path(args.out)
    write_incident(out / "incident.json", incident)
    box_paths = recorder.write_blackboxes(out)
    write_openmetrics(out / "metrics.om", cluster.health.metrics)
    tl = reconstruct_timeline(incident)
    print(render_timeline(tl, max_entries=args.max_entries))
    print(f"\nwrote {out / 'incident.json'}, "
          f"{', '.join(str(p) for p in box_paths)}, {out / 'metrics.om'}")
    return 0


def _cmd_timeline(args) -> int:
    incident = _load_or_demo(args.incident)
    print(render_timeline(
        reconstruct_timeline(incident), max_entries=args.max_entries
    ))
    return 0


def _cmd_health(args) -> int:
    if args.incident is None:
        print("no incident file given: running the demo scenario\n")
        _, _, cluster = run_demo_incident()
        print(cluster.health.report())
        return 0
    incident = load_incident(args.incident)
    gauges = incident.get("health")
    if not gauges:
        print("incident dump carries no health snapshot", file=sys.stderr)
        return 1
    print("fleet health (from incident dump)")
    for name, value in sorted(gauges.items()):
        print(f"  {name:<40} {value:g}")
    return 0


def _cmd_diff(args) -> int:
    diff = diff_incidents(load_incident(args.a), load_incident(args.b))
    print(render_diff(diff))
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.forensics", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dump = sub.add_parser(
        "dump", help="run the demo failure and write the forensic record"
    )
    p_dump.add_argument("--out", default="forensics_out", help="output directory")
    p_dump.add_argument("--node", type=int, default=3, help="node to kill")
    p_dump.add_argument(
        "--iteration", type=int, default=7, help="iteration the failure fires at"
    )
    p_dump.add_argument("--ntasks", type=int, default=8, help="task count")
    p_dump.add_argument("--max-entries", type=int, default=40)
    p_dump.set_defaults(fn=_cmd_dump)

    p_tl = sub.add_parser(
        "timeline", help="reconstruct and print the recovery timeline"
    )
    p_tl.add_argument(
        "incident", nargs="?", help="incident.json (default: run the demo)"
    )
    p_tl.add_argument("--max-entries", type=int, default=60)
    p_tl.set_defaults(fn=_cmd_timeline)

    p_health = sub.add_parser("health", help="print the fleet-health gauges")
    p_health.add_argument(
        "incident", nargs="?", help="incident.json (default: run the demo)"
    )
    p_health.set_defaults(fn=_cmd_health)

    p_diff = sub.add_parser("diff", help="compare two incident dumps")
    p_diff.add_argument("a", help="baseline incident.json")
    p_diff.add_argument("b", help="comparison incident.json")
    p_diff.set_defaults(fn=_cmd_diff)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
