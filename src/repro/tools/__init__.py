"""Command-line utilities: ``python -m repro.tools.report``."""
