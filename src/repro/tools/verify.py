"""``python -m repro.tools.verify`` — alias for ``python -m repro.verify``.

Kept under :mod:`repro.tools` so the harness sits next to the other
operator entry points (``trace``, ``report``); the implementation lives
in :mod:`repro.verify.__main__`.
"""

from __future__ import annotations

import sys

from repro.verify.__main__ import main

__all__ = ["main"]

if __name__ == "__main__":
    sys.exit(main())
