"""Trace one checkpoint/restart lifecycle and export the evidence.

Usage::

    python -m repro.tools.trace [--app bt] [--klass toy] [--pes 4]
                                [--restart-pes 6] [--niter 4] [--out DIR]

Runs a NAS-proxy application under a live
:class:`~repro.obs.spans.Tracer`: ``--pes`` tasks execute ``--niter``
iterations with a DRMS checkpoint, then the job restarts from that
checkpoint on ``--restart-pes`` tasks (a reconfigured restart).  The
session's observability is then exported three ways:

* ``trace.json``   — Chrome trace-event JSON; load it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to see the nested
  phase spans on the simulated-time axis;
* ``metrics.json`` — the flat metrics dump (every counter/gauge plus
  expanded histogram summaries);
* ``breakdown.txt`` — the Table 6-style per-phase cost table, printed
  to stdout as well.

Without ``--out`` the files land in ``trace_out/``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

from repro.apps import make_proxy
from repro.obs import (
    Tracer,
    breakdown_report,
    use_tracer,
    write_chrome_trace,
    write_metrics,
)
from repro.runtime.machine import Machine, MachineParams

__all__ = ["trace_lifecycle", "main"]


def trace_lifecycle(
    app: str = "bt",
    klass: str = "toy",
    pes: int = 4,
    restart_pes: int = 6,
    niter: int = 4,
    tracer: Optional[Tracer] = None,
) -> Tracer:
    """Run checkpoint + reconfigured restart of one proxy app under a
    tracer (a fresh one by default); returns the tracer holding the
    spans, marks, and metrics of the whole lifecycle."""
    tracer = tracer if tracer is not None else Tracer()
    proxy = make_proxy(app, klass)
    machine = Machine(MachineParams(num_nodes=max(pes, restart_pes)))
    application = proxy.build_application(machine=machine)
    prefix = f"{app}.{klass}"
    with use_tracer(tracer):
        # No wrapper span: the engine roots ("checkpoint" on the worker
        # thread that takes it, "restart" on this thread) stay top-level
        # so breakdown_report() finds them.
        application.start(
            pes,
            args=(niter, prefix),
            kwargs={"checkpoint_every": max(1, niter // 2)},
        )
        application.restart(prefix, restart_pes, args=(niter, prefix))
    return tracer


def export_all(tracer: Tracer, out_dir, stream=None) -> pathlib.Path:
    """Write ``trace.json`` / ``metrics.json`` / ``breakdown.txt`` under
    ``out_dir`` and print the breakdown tables; returns the directory."""
    stream = stream if stream is not None else sys.stdout
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(out / "trace.json", tracer)
    write_metrics(out / "metrics.json", tracer.metrics)
    report = breakdown_report(tracer)
    (out / "breakdown.txt").write_text(report + "\n")
    print(report, file=stream)
    print(
        f"\nwrote {out / 'trace.json'} (load at https://ui.perfetto.dev), "
        f"{out / 'metrics.json'}, {out / 'breakdown.txt'}",
        file=stream,
    )
    return out


def main(argv=None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(prog="repro.tools.trace", description=__doc__)
    parser.add_argument("--app", default="bt", help="proxy app: bt, lu, or sp")
    parser.add_argument("--klass", default="toy", help="NPB class (toy, W, A, B, C)")
    parser.add_argument("--pes", type=int, default=4, help="task count of the first run")
    parser.add_argument(
        "--restart-pes", type=int, default=6,
        help="task count of the reconfigured restart",
    )
    parser.add_argument("--niter", type=int, default=4, help="solver iterations")
    parser.add_argument("--out", default="trace_out", help="output directory")
    args = parser.parse_args(argv)
    tracer = trace_lifecycle(
        app=args.app,
        klass=args.klass,
        pes=args.pes,
        restart_pes=args.restart_pes,
        niter=args.niter,
    )
    export_all(tracer, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
