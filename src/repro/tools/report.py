"""Regenerate every paper table/figure in one command.

Usage::

    python -m repro.tools.report [--out DIR] [--trace TRACE_DIR]

Prints the full reproduction report (Tables 1, 3, 4, 5, 6 and
Figure 7) and, with ``--out``, writes each artifact to a file.  With
``--trace``, additionally runs one traced checkpoint/restart lifecycle
(see :mod:`repro.tools.trace`) and writes its Chrome trace, metrics
dump, and phase breakdown under ``TRACE_DIR``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional

from repro.perfmodel import reportgen

ARTIFACTS = (
    ("table1", lambda cells: reportgen.table1()),
    ("table3", lambda cells: reportgen.table3()),
    ("table4", lambda cells: reportgen.table4()),
    ("table5", lambda cells: reportgen.table5(cells)),
    ("table6", lambda cells: reportgen.table6(cells)),
    ("figure7", lambda cells: reportgen.figure7(cells)),
)


def generate_report(out_dir: Optional[str] = None, stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    cells = reportgen.measure_all_cells()
    out = pathlib.Path(out_dir) if out_dir else None
    if out:
        out.mkdir(parents=True, exist_ok=True)
    for name, builder in ARTIFACTS:
        text, _ = builder(cells)
        print(text, file=stream)
        print(file=stream)
        if out:
            (out / f"{name}.txt").write_text(text + "\n")
    print(
        "(times are simulated seconds from the calibrated PIOFS model; "
        "see EXPERIMENTS.md for paper-vs-measured notes)",
        file=stream,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools.report", description=__doc__
    )
    parser.add_argument("--out", default=None, help="directory for .txt artifacts")
    parser.add_argument(
        "--trace",
        default=None,
        metavar="TRACE_DIR",
        help="also run one traced checkpoint/restart lifecycle and write "
        "trace.json / metrics.json / breakdown.txt here",
    )
    args = parser.parse_args(argv)
    generate_report(args.out)
    if args.trace:
        from repro.tools.trace import export_all, trace_lifecycle

        export_all(trace_lifecycle(), args.trace)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
