"""The paper's published numbers — the reproduction targets.

Every table of the evaluation, transcribed.  Four cells of Table 5 (the
SPMD column of the SP row) are garbled in the available text of the
paper; they are *reconstructed* from the surrounding prose and the
consistent rate model implied by the BT/LU rows, and are flagged
``reconstructed`` so benches can annotate them.  See DESIGN.md §4.

Units: sizes in decimal MB (the paper's MB is 1e6 bytes — cross-check
Table 4's 83,886,080-byte BT array inventory against Table 3's "84 MB"),
times in seconds, rates in MB/s.

One transcription note: the LU row of Table 4 does not sum — the listed
components give 89,168,924 against a printed total of 89,169,924.  The
paper defines private/replicated as "the balance with respect to the
total data segment size", so we store 44,135,872 (the balance) rather
than the printed 44,134,872.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "Table5Cell",
    "Table6Row",
]

#: Table 1 — source lines: {app: (total_lines, lines_added)}
PAPER_TABLE1: Dict[str, Tuple[int, int]] = {
    "bt": (10_973, 107),
    "lu": (9_641, 85),
    "sp": (9_561, 99),
}

#: Table 3 — size of saved state in MB:
#: {app: {"drms": {"data","array","total"}, "spmd": {4: ..., 8: ..., 16: ...}}}
PAPER_TABLE3: Dict[str, Dict] = {
    "bt": {"drms": {"data": 63, "array": 84, "total": 147},
           "spmd": {4: 251, 8: 502, 16: 1004}},
    "lu": {"drms": {"data": 85, "array": 34, "total": 119},
           "spmd": {4: 340, 8: 679, 16: 1358}},
    "sp": {"drms": {"data": 53, "array": 48, "total": 101},
           "spmd": {4: 210, 8: 420, 16: 840}},
}

#: Table 4 — data-segment components in bytes:
#: {app: (total, local_sections, system_related, private_replicated)}
PAPER_TABLE4: Dict[str, Tuple[int, int, int, int]] = {
    "bt": (65_982_468, 25_635_456, 34_972_228, 5_374_784),
    "lu": (89_169_924, 10_061_824, 34_972_228, 44_135_872),
    "sp": (55_242_756, 14_648_832, 34_972_228, 5_621_696),
}


@dataclass(frozen=True)
class Table5Cell:
    """mean ± sigma seconds over 10 runs."""

    mean: float
    sigma: float
    reconstructed: bool = False


#: Table 5 — checkpoint/restart times:
#: {app: {("checkpoint"|"restart", pes, "drms"|"spmd"): Table5Cell}}
PAPER_TABLE5: Dict[str, Dict[Tuple[str, int, str], Table5Cell]] = {
    "bt": {
        ("checkpoint", 8, "drms"): Table5Cell(16, 2),
        ("checkpoint", 8, "spmd"): Table5Cell(41, 16),
        ("checkpoint", 16, "drms"): Table5Cell(20, 2),
        ("checkpoint", 16, "spmd"): Table5Cell(114, 16),
        ("restart", 8, "drms"): Table5Cell(42, 3),
        ("restart", 8, "spmd"): Table5Cell(21, 1),
        ("restart", 16, "drms"): Table5Cell(32, 5),
        ("restart", 16, "spmd"): Table5Cell(109, 10),
    },
    "lu": {
        ("checkpoint", 8, "drms"): Table5Cell(19, 2),
        ("checkpoint", 8, "spmd"): Table5Cell(128, 18),
        ("checkpoint", 16, "drms"): Table5Cell(18, 4),
        ("checkpoint", 16, "spmd"): Table5Cell(185, 10),
        ("restart", 8, "drms"): Table5Cell(46, 20),
        ("restart", 8, "spmd"): Table5Cell(125, 20),
        ("restart", 16, "drms"): Table5Cell(31, 3),
        ("restart", 16, "spmd"): Table5Cell(145, 27),
    },
    "sp": {
        ("checkpoint", 8, "drms"): Table5Cell(13, 3),
        # The SP row's SPMD cells are garbled in the source text; values
        # below follow the prose ("restart only doubles from 8 to 16";
        # BT and SP on 8 PEs are below the buffer threshold) and the
        # aggregate rates of the BT/LU rows.
        ("checkpoint", 8, "spmd"): Table5Cell(28, 12, reconstructed=True),
        ("checkpoint", 16, "drms"): Table5Cell(16, 2),
        ("checkpoint", 16, "spmd"): Table5Cell(96, 18, reconstructed=True),
        ("restart", 8, "drms"): Table5Cell(35, 2),
        ("restart", 8, "spmd"): Table5Cell(18, 5, reconstructed=True),
        ("restart", 16, "drms"): Table5Cell(26, 1),
        ("restart", 16, "spmd"): Table5Cell(42, 11, reconstructed=True),
    },
}


@dataclass(frozen=True)
class Table6Row:
    """One (app, PEs) row of Table 6."""

    total_s: float
    total_rate: float
    segment_pct: int
    segment_rate: float
    arrays_pct: int
    arrays_rate: float


#: Table 6 — component breakdown of DRMS checkpoint and restart:
#: {app: {(pes, "checkpoint"|"restart"): Table6Row}}
PAPER_TABLE6: Dict[str, Dict[Tuple[int, str], Table6Row]] = {
    "bt": {
        (8, "checkpoint"): Table6Row(16.0, 9.2, 32, 12.4, 68, 7.7),
        (16, "checkpoint"): Table6Row(19.5, 7.5, 38, 8.4, 62, 7.0),
        (8, "restart"): Table6Row(41.6, 14.1, 42, 29.0, 49, 4.1),
        (16, "restart"): Table6Row(31.7, 34.4, 57, 55.4, 32, 8.4),
    },
    "lu": {
        (8, "checkpoint"): Table6Row(19.0, 6.3, 68, 6.6, 32, 5.5),
        (16, "checkpoint"): Table6Row(18.2, 6.5, 56, 8.4, 44, 4.2),
        (8, "restart"): Table6Row(46.4, 15.4, 69, 21.3, 23, 3.1),
        (16, "restart"): Table6Row(30.7, 45.4, 71, 62.6, 15, 7.2),
    },
    "sp": {
        (8, "checkpoint"): Table6Row(13.3, 7.6, 40, 10.0, 60, 6.0),
        (16, "checkpoint"): Table6Row(16.3, 6.2, 39, 8.3, 61, 4.9),
        (8, "restart"): Table6Row(34.5, 13.6, 47, 26.0, 42, 3.3),
        (16, "restart"): Table6Row(26.5, 33.6, 57, 55.9, 29, 6.2),
    },
}
