"""Analytic crossover predictor for the restart comparison.

The paper's most interesting Table 5 pattern is a *crossover*: below the
buffer-memory threshold the conventional SPMD restart beats the DRMS
restart (it skips the array-read phase), above it the DRMS restart wins
by a widening margin.  Given an application profile and the PIOFS
constants, this module answers, in closed form, the question the paper
leaves implicit: **at how many processors does DRMS restart start to
win?**

Two mechanisms bound the answer:

* the *threshold PE count* ``p_thresh``: the smallest task count whose
  total SPMD working set (``p × segment``) exceeds the buffer memory
  available with ``p`` busy nodes — beyond it the SPMD restart runs at
  the collapsed rate;
* per-regime restart-time formulas mirroring
  :mod:`repro.pfs.phase` (DRMS: shared segment read + client-scaled
  array read + fixed init; SPMD: per-client distinct-file read).

The bench cross-checks the analytic crossover against the simulated
engines over a PE grid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.pfs.params import PIOFSParams

__all__ = ["AppProfile", "threshold_pes", "drms_restart_s", "spmd_restart_s", "crossover_pes"]

_MB = 1e6


@dataclass(frozen=True)
class AppProfile:
    """The two byte quantities the restart comparison depends on."""

    segment_bytes: int
    array_bytes: int
    #: distinct array files (open overhead in the DRMS restart)
    n_arrays: int = 1

    @classmethod
    def of(cls, proxy) -> "AppProfile":
        """Profile of an :class:`~repro.apps.base.NPBProxy`."""
        return cls(
            segment_bytes=proxy.spmd_segment_bytes,
            array_bytes=proxy.array_bytes_total,
            n_arrays=len(proxy.fields),
        )


def threshold_pes(profile: AppProfile, params: Optional[PIOFSParams] = None) -> int:
    """Smallest task count at which the SPMD restart working set
    exceeds the buffer memory (⇒ collapsed read rate).  Returns a count
    beyond ``num_servers`` when the threshold is never crossed."""
    params = params or PIOFSParams()
    seg_mb = profile.segment_bytes / _MB
    for p in range(1, params.num_servers + 1):
        if p * seg_mb > params.buffer_total_mb(p):
            return p
    return params.num_servers + 1


def drms_restart_s(
    profile: AppProfile, pes: int, params: Optional[PIOFSParams] = None
) -> float:
    """DRMS restart time: every task reads the shared segment, the
    arrays stream in at the client-scaled rate, plus the fixed init."""
    params = params or PIOFSParams()
    seg_mb = profile.segment_bytes / _MB
    arr_mb = profile.array_bytes / _MB
    seg_s = seg_mb / params.shared_read_per_client_mbps + params.file_open_overhead_s
    arr_s = (
        arr_mb / (pes * params.array_read_per_client_mbps)
        + params.file_open_overhead_s * profile.n_arrays
    )
    return params.restart_init_s + seg_s + arr_s


def spmd_restart_s(
    profile: AppProfile, pes: int, params: Optional[PIOFSParams] = None
) -> float:
    """SPMD restart time: each task reads its private segment at the
    fast or collapsed rate depending on the working set."""
    params = params or PIOFSParams()
    seg_mb = profile.segment_bytes / _MB
    pressured = pes * seg_mb > params.buffer_total_mb(pes)
    rate = params.distinct_read_slow_mbps if pressured else params.distinct_read_fast_mbps
    return params.restart_init_s + seg_mb / rate + params.file_open_overhead_s


def crossover_pes(
    profile: AppProfile, params: Optional[PIOFSParams] = None
) -> Optional[int]:
    """Smallest task count at which the DRMS restart beats the SPMD
    restart; ``None`` when it never does within the machine."""
    params = params or PIOFSParams()
    for p in range(1, params.num_servers + 1):
        if drms_restart_s(profile, p, params) < spmd_restart_s(profile, p, params):
            return p
    return None
