"""Drivers that regenerate the paper's measurements.

``measure_checkpoint_restart`` reproduces one (application, PEs) cell of
Tables 5 and 6: it builds the proxy's Class-A state (virtual payloads),
places the tasks on the machine exactly as the paper does (one task per
node, PIOFS servers on all 16 nodes), runs the DRMS checkpoint + restart
engines and the conventional SPMD pair, and returns the component
breakdowns.

The paper reports mean ± σ over 10 runs; the simulator is
deterministic, so ``repeat_with_noise`` models run-to-run variance with
seeded lognormal jitter on phase durations (the observed coefficients of
variation in Table 5 are 5-40%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps import make_proxy
from repro.apps.base import NPBProxy
from repro.arrays.darray import DistributedArray
from repro.checkpoint.drms import (
    CheckpointBreakdown,
    RestartBreakdown,
    drms_checkpoint,
    drms_restart,
)
from repro.checkpoint.spmd import spmd_checkpoint, spmd_restart
from repro.pfs.params import PIOFSParams
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine, MachineParams

__all__ = ["CellResult", "measure_checkpoint_restart", "repeat_with_noise"]


@dataclass
class CellResult:
    """All four operations for one (app, PEs) configuration."""

    benchmark: str
    pes: int
    drms_ckpt: CheckpointBreakdown
    drms_restart: RestartBreakdown
    spmd_ckpt: CheckpointBreakdown
    spmd_restart: RestartBreakdown

    def seconds(self) -> Dict[Tuple[str, str], float]:
        """The four operation times keyed by (op, scheme)."""
        return {
            ("checkpoint", "drms"): self.drms_ckpt.total_seconds,
            ("checkpoint", "spmd"): self.spmd_ckpt.total_seconds,
            ("restart", "drms"): self.drms_restart.total_seconds,
            ("restart", "spmd"): self.spmd_restart.total_seconds,
        }


def build_state(proxy: NPBProxy, pes: int) -> List[DistributedArray]:
    """The proxy's distributed arrays at ``pes`` tasks (virtual for
    bench-scale classes)."""
    return [
        DistributedArray(
            f.name,
            f.shape(proxy.n),
            np.dtype(f.dtype),
            proxy.field_distribution(f, pes),
            store_data=proxy.store_data,
        )
        for f in proxy.fields
    ]


def measure_checkpoint_restart(
    benchmark: str,
    pes: int,
    klass: str = "A",
    machine: Optional[Machine] = None,
    params: Optional[PIOFSParams] = None,
    restart_pes: Optional[int] = None,
) -> CellResult:
    """One (app, PEs) cell of Tables 5/6, DRMS and SPMD variants."""
    proxy = make_proxy(benchmark, klass, store_data=False)
    machine = machine or Machine(MachineParams(num_nodes=16))
    pfs = PIOFS(machine=machine, params=params)

    # one task per node; PIOFS servers share all nodes (paper setup)
    machine.clear_tasks()
    machine.place_tasks(pes)

    arrays = build_state(proxy, pes)
    from repro.checkpoint.segment import DataSegment

    segment = DataSegment(profile=proxy.segment_profile())
    prefix = f"{benchmark}.{pes}"
    bd_dc = drms_checkpoint(pfs, prefix + ".drms", segment, arrays)
    _, bd_dr = drms_restart(pfs, prefix + ".drms", restart_pes or pes)
    bd_sc = spmd_checkpoint(
        pfs,
        prefix + ".spmd",
        ntasks=pes,
        segment_bytes=proxy.spmd_segment_bytes,
        app_name=benchmark,
    )
    _, bd_sr = spmd_restart(pfs, prefix + ".spmd", pes)
    machine.clear_tasks()
    return CellResult(
        benchmark=benchmark,
        pes=pes,
        drms_ckpt=bd_dc,
        drms_restart=bd_dr,
        spmd_ckpt=bd_sc,
        spmd_restart=bd_sr,
    )


def repeat_with_noise(
    mean_seconds: float, runs: int = 10, cv: float = 0.10, seed: int = 7
) -> Tuple[float, float]:
    """Model the paper's 10-run mean ± σ: seeded lognormal jitter with
    coefficient of variation ``cv`` around the deterministic value."""
    rng = np.random.default_rng(seed + int(mean_seconds * 1000) % 99991)
    sigma = math.sqrt(math.log(1.0 + cv * cv))
    samples = mean_seconds * rng.lognormal(-sigma * sigma / 2.0, sigma, size=runs)
    return float(np.mean(samples)), float(np.std(samples))
