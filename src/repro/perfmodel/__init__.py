"""Analytic models and the paper's reference numbers.

* :mod:`repro.perfmodel.paper_data` — every value from Tables 1, 3, 4,
  5, and 6 (the calibration targets, with reconstruction flags for the
  cells garbled in the source text);
* :mod:`repro.perfmodel.shadow_ratio` — the Section 6 global-view vs
  task-based saved-state analysis ``r = ((n + 2s)/n)^d``;
* :mod:`repro.perfmodel.wong_franklin` — the checkpointing/recovery
  degradation model of reference [19], with and without load
  redistribution (reconfiguration).
"""

from repro.perfmodel.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.perfmodel.shadow_ratio import shadow_ratio, extra_task_based_bytes
from repro.perfmodel.wong_franklin import WongFranklinModel
from repro.perfmodel.crossover import AppProfile, crossover_pes, threshold_pes

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "shadow_ratio",
    "extra_task_based_bytes",
    "WongFranklinModel",
    "AppProfile",
    "crossover_pes",
    "threshold_pes",
]
