"""Section 6: global-view vs task-based saved-state analysis.

A grid computation over an ``N^d`` grid on ``P = p^d`` tasks gives each
task an ``n^d`` section (``n = N/p``) plus a shadow region of width
``s`` along each edge.  Global-view checkpointing (DRMS, HPF) saves the
``N^d`` grid; task-based checkpointing saves every task's
``(n + 2s)^d`` local section.  The ratio of grid points saved is

    r = (n + 2s)^d / n^d

The paper's worked example: CFD codes with ``n = 32``, ``s = 1``,
``d = 3`` give ``r = 1.38``; for NPB BT Class C (162³) on 125 (=5³)
processors that is ~500 MB of extra task-based data.  ``r`` grows with
``P`` at fixed ``N``, so global-view checkpointing wins more the larger
the machine.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["shadow_ratio", "extra_task_based_bytes", "shadow_ratio_for_grid"]


def shadow_ratio(n: float, s: float = 1.0, d: int = 3) -> float:
    """``r = ((n + 2 s) / n)^d`` — how many times more grid points the
    task-based (local-view) checkpoint saves."""
    if n <= 0:
        raise ValueError(f"per-task section size must be positive, got {n}")
    if s < 0 or d < 1:
        raise ValueError("shadow width must be >= 0 and dimension >= 1")
    return ((n + 2.0 * s) / n) ** d


def shadow_ratio_for_grid(N: int, P: int, s: float = 1.0, d: int = 3) -> float:
    """``r`` for an ``N^d`` grid on ``P = p^d`` tasks (``p = P**(1/d)``)."""
    p = round(P ** (1.0 / d))
    if p ** d != P:
        raise ValueError(f"P={P} is not a perfect {d}-th power")
    return shadow_ratio(N / p, s=s, d=d)


def extra_task_based_bytes(
    N: int,
    P: int,
    s: float = 1.0,
    d: int = 3,
    bytes_per_point: float = 5 * 8,
) -> float:
    """Extra bytes the task-based checkpoint saves over the global view
    for an ``N^d`` grid of ``bytes_per_point`` (default: 5 doubles, the
    NPB state vector).  The paper's example: BT Class C (N=162) on 125
    processors ⇒ ≈500 MB."""
    r = shadow_ratio_for_grid(N, P, s=s, d=d)
    global_bytes = (N ** d) * bytes_per_point
    return (r - 1.0) * global_bytes
