"""Sensitivity analysis of the PIOFS calibration.

The timing reproduction rests on the calibrated constants in
:class:`~repro.pfs.params.PIOFSParams`.  This module perturbs each
constant and measures how much every Table 5 cell moves — showing (a)
which mechanisms carry which cells and (b) that the paper's qualitative
*shapes* (orderings, crossovers) are robust to substantial
miscalibration, so the reproduction's conclusions do not hinge on any
single fitted number.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.perfmodel.experiments import measure_checkpoint_restart
from repro.pfs.params import PIOFSParams

__all__ = ["perturbable_params", "cell_times", "sensitivity_sweep", "shapes_hold"]

APPS = ("bt", "lu", "sp")
PES = (8, 16)


def perturbable_params() -> List[str]:
    """The float-valued calibration constants (counts excluded)."""
    out = []
    for f in dataclasses.fields(PIOFSParams):
        if f.type == "float" or isinstance(getattr(PIOFSParams(), f.name), float):
            out.append(f.name)
    return out


def cell_times(params: Optional[PIOFSParams] = None) -> Dict[Tuple, float]:
    """All 24 Table 5 cells under the given parameter set."""
    out: Dict[Tuple, float] = {}
    for b in APPS:
        for p in PES:
            cell = measure_checkpoint_restart(b, p, params=params)
            for key, sec in cell.seconds().items():
                out[(b, p) + key] = sec
    return out


def sensitivity_sweep(
    delta: float = 0.2, params: Optional[List[str]] = None
) -> Dict[str, float]:
    """Max relative change over the 24 cells when each constant is
    scaled by ``1 + delta``; sorted most-influential first."""
    base = cell_times()
    names = params or perturbable_params()
    influence: Dict[str, float] = {}
    for name in names:
        default = getattr(PIOFSParams(), name)
        perturbed = dataclasses.replace(PIOFSParams(), **{name: default * (1 + delta)})
        times = cell_times(perturbed)
        influence[name] = max(
            abs(times[k] / base[k] - 1.0) for k in base if base[k] > 0
        )
    return dict(sorted(influence.items(), key=lambda kv: -kv[1]))


def shapes_hold(params: PIOFSParams) -> bool:
    """The paper's four qualitative claims under an arbitrary parameter
    set (used to show robustness to miscalibration)."""
    cells = {
        (b, p): measure_checkpoint_restart(b, p, params=params)
        for b in APPS
        for p in PES
    }
    for b in APPS:
        for p in PES:
            s = cells[(b, p)].seconds()
            if not s[("checkpoint", "drms")] < s[("checkpoint", "spmd")]:
                return False
        if not (
            cells[(b, 16)].drms_restart.total_seconds
            < cells[(b, 8)].drms_restart.total_seconds
        ):
            return False
    # threshold collapse: BT's SPMD restart degrades sharply 8 -> 16
    if not (
        cells[("bt", 16)].spmd_restart.total_seconds
        > 2 * cells[("bt", 8)].spmd_restart.total_seconds
    ):
        return False
    # crossover at 16 PEs: DRMS restart beats SPMD restart everywhere
    return all(
        cells[(b, 16)].drms_restart.total_seconds
        < cells[(b, 16)].spmd_restart.total_seconds
        for b in APPS
    )
