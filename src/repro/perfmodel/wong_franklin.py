"""The Wong–Franklin checkpoint/recovery degradation model (ref [19]).

The paper's conclusions lean on the analytic comparison of Wong &
Franklin (JPDC 35(1), 1996): checkpoint/recovery *without* load
redistribution — where the application must wait for the failed
processor to return — "has limited use for applications requiring a
large number of processors", while recovery *with* load redistribution
(what DRMS's reconfigurable restart provides) keeps degradation
"negligibly small, as long as the checkpointing and load redistribution
overheads are small".

Model (first-order renewal approximation, exponential failures):

* ``P`` processors, each failing at rate ``lam`` ⇒ system rate ``Λ=Pλ``;
* checkpoints every ``τ`` seconds of useful work cost ``C`` each;
* a failure rolls back ``τ/2`` on average and costs a restart ``R``;
* without redistribution the run additionally *waits out* the repair
  time ``D``;
* with redistribution it instead continues on ``P-1`` processors until
  the repair, an effective extra time of ``D/(P-1)``.

``degradation`` is expected time over failure-free no-checkpoint time:

    deg = (1 + C/τ) / (1 - Λ·L)   with  L = τ/2 + R + D_eff

valid while ``Λ·L < 1`` (beyond that the run cannot make progress — the
"limited use" regime).  A seeded Monte Carlo cross-checks the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["WongFranklinModel"]


@dataclass(frozen=True)
class WongFranklinModel:
    """Degradation of a parallel run under failures + checkpointing."""

    procs: int
    #: per-processor failure rate (1/s), e.g. 1/MTBF_node
    lam: float
    #: checkpoint overhead C (s)
    checkpoint_overhead_s: float
    #: restart overhead R (s)
    restart_overhead_s: float
    #: node repair/down time D (s)
    repair_time_s: float

    @property
    def system_rate(self) -> float:
        return self.procs * self.lam

    def failure_loss(self, tau: float, redistribute: bool) -> float:
        """Expected time lost per failure, L."""
        base = tau / 2.0 + self.restart_overhead_s
        if redistribute:
            # keep computing on P-1 processors during the repair
            if self.procs <= 1:
                return base + self.repair_time_s
            return base + self.repair_time_s / (self.procs - 1)
        return base + self.repair_time_s

    def degradation(self, tau: float, redistribute: bool) -> float:
        """Expected runtime over the failure-free, checkpoint-free
        runtime; ``inf`` when the run cannot make progress."""
        if tau <= 0:
            raise ValueError("checkpoint interval must be positive")
        util = 1.0 + self.checkpoint_overhead_s / tau
        load = self.system_rate * self.failure_loss(tau, redistribute)
        if load >= 1.0:
            return math.inf
        return util / (1.0 - load)

    def optimal_interval(self) -> float:
        """Young's first-order optimum ``τ* = sqrt(2 C / Λ)``."""
        if self.system_rate <= 0:
            return math.inf
        return math.sqrt(2.0 * self.checkpoint_overhead_s / self.system_rate)

    def expected_runtime(self, work_s: float, tau: Optional[float] = None,
                         redistribute: bool = True) -> float:
        """Expected completion time for ``work_s`` seconds of parallel
        work (already divided over the processors)."""
        t = tau if tau is not None else self.optimal_interval()
        return work_s * self.degradation(t, redistribute)

    # -- Monte Carlo cross-check ------------------------------------------------

    def simulate(
        self,
        work_s: float,
        tau: Optional[float] = None,
        redistribute: bool = True,
        runs: int = 200,
        seed: int = 12345,
    ) -> float:
        """Mean completion time over ``runs`` sampled failure histories;
        validates :meth:`degradation` within Monte Carlo noise."""
        t = tau if tau is not None else self.optimal_interval()
        rng = np.random.default_rng(seed)
        rate = self.system_rate
        totals = []
        for _ in range(runs):
            done = 0.0  # useful work completed
            clock = 0.0
            since_ckpt = 0.0
            next_fail = rng.exponential(1.0 / rate) if rate > 0 else math.inf
            guard = 0
            while done < work_s:
                guard += 1
                if guard > 1_000_000:
                    raise RuntimeError("simulation failed to converge")
                seg = min(t - since_ckpt, work_s - done)
                if clock + seg < next_fail:
                    clock += seg
                    done += seg
                    since_ckpt += seg
                    if since_ckpt >= t and done < work_s:
                        clock += self.checkpoint_overhead_s
                        since_ckpt = 0.0
                else:
                    # Failure mid-segment: the partial segment was never
                    # credited; additionally roll back to the last
                    # checkpoint, losing the credited since_ckpt work.
                    clock = next_fail
                    done = max(0.0, done - since_ckpt)
                    since_ckpt = 0.0
                    clock += self.restart_overhead_s
                    if redistribute:
                        if self.procs > 1:
                            # degraded speed during the repair window is
                            # folded in as its expected extra time
                            clock += self.repair_time_s / (self.procs - 1)
                        else:
                            clock += self.repair_time_s
                    else:
                        clock += self.repair_time_s
                    next_fail = clock + (
                        rng.exponential(1.0 / rate) if rate > 0 else math.inf
                    )
            totals.append(clock)
        return float(np.mean(totals))
