"""Generators for the paper's tables and figure, shared by the
benchmark harness and the ``python -m repro.tools.report`` CLI.

Each ``table*`` function returns ``(text, data)``: the rendered ASCII
artifact plus the measured objects, so callers can assert against them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps import make_proxy
from repro.apps.meta import count_drms_lines
from repro.checkpoint.drms import drms_checkpoint
from repro.checkpoint.restart import saved_state_bytes
from repro.checkpoint.segment import DataSegment
from repro.checkpoint.spmd import spmd_checkpoint
from repro.perfmodel.experiments import (
    build_state,
    measure_checkpoint_restart,
    repeat_with_noise,
)
from repro.perfmodel.paper_data import (
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
)
from repro.pfs.piofs import PIOFS
from repro.reporting.tables import Table, bar_chart
from repro.runtime.machine import Machine, MachineParams

__all__ = [
    "table1",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure7",
    "measure_all_cells",
]

APPS = ("bt", "lu", "sp")
MB = 1e6


def measure_all_cells() -> Dict:
    """All six (app, PEs) Table 5/6 measurements."""
    return {
        (b, p): measure_checkpoint_restart(b, p) for b in APPS for p in (8, 16)
    }


def table1() -> Tuple[str, Dict]:
    """Regenerate Table 1 (conformance line counts)."""
    t = Table(
        ["Application", "paper total lines", "paper lines added", "paper %",
         "proxy DRMS-API lines"],
        title="Table 1: lines added to conform to the DRMS programming model",
    )
    rows = {}
    for name in APPS:
        proxy = make_proxy(name, "toy")
        total, added = PAPER_TABLE1[name]
        lines = count_drms_lines(proxy.spmd_main)
        t.add_row(name.upper(), total, added, f"{100 * added / total:.1f}%", lines)
        rows[name] = (total, added, lines)
    return t.render(), rows


def table3() -> Tuple[str, Dict]:
    """Regenerate Table 3 (saved-state sizes)."""
    machine = Machine(MachineParams(num_nodes=16))
    pfs = PIOFS(machine=machine)
    t = Table(
        ["App", "DRMS data", "DRMS array", "DRMS total",
         "SPMD 4PE", "SPMD 8PE", "SPMD 16PE", "paper DRMS/SPMD16"],
        title="Table 3: size of saved state (MB); DRMS fixed, SPMD linear in P",
    )
    measured = {}
    for name in APPS:
        proxy = make_proxy(name, "A", store_data=False)
        seg = DataSegment(profile=proxy.segment_profile())
        drms_checkpoint(pfs, f"{name}.drms", seg, build_state(proxy, 4))
        drms = saved_state_bytes(pfs, f"{name}.drms")
        spmd = {}
        for p in (4, 8, 16):
            spmd_checkpoint(
                pfs, f"{name}.spmd{p}", ntasks=p,
                segment_bytes=proxy.spmd_segment_bytes,
            )
            spmd[p] = saved_state_bytes(pfs, f"{name}.spmd{p}")["total"]
        paper = PAPER_TABLE3[name]
        t.add_row(
            name.upper(), drms["segment"] / MB, drms["arrays"] / MB,
            drms["total"] / MB, spmd[4] / MB, spmd[8] / MB, spmd[16] / MB,
            f"{paper['drms']['total']}/{paper['spmd'][16]}",
        )
        measured[name] = (drms, spmd)
    return t.render(), measured


def table4() -> Tuple[str, Dict]:
    """Regenerate Table 4 (data-segment components)."""
    t = Table(
        ["App", "Total data (B)", "Local sections", "System related",
         "Private/replicated", "paper total"],
        title="Table 4: data-segment components of a representative task",
    )
    profiles = {}
    for name in APPS:
        prof = make_proxy(name, "A").segment_profile()
        t.add_row(
            name.upper(), prof.total_bytes, prof.local_section_bytes,
            prof.system_bytes, prof.private_bytes, PAPER_TABLE4[name][0],
        )
        profiles[name] = prof
    return t.render(), profiles


def table5(cells: Dict = None) -> Tuple[str, Dict]:
    """Regenerate Table 5 (checkpoint/restart times)."""
    cells = cells or measure_all_cells()
    t = Table(
        ["App", "op", "PEs", "kind", "model (s)", "mean±sigma (10 runs)",
         "paper (s)", "ratio"],
        title="Table 5: time to checkpoint and restart DRMS vs SPMD applications",
    )
    for name in APPS:
        for pes in (8, 16):
            cell = cells[(name, pes)]
            for (op, kind), sec in sorted(cell.seconds().items()):
                paper = PAPER_TABLE5[name][(op, pes, kind)]
                mean, sigma = repeat_with_noise(
                    sec, runs=10, cv=paper.sigma / max(paper.mean, 1)
                )
                flag = " [R]" if paper.reconstructed else ""
                t.add_row(
                    name.upper(), op, pes, kind, sec,
                    f"{mean:.0f}±{sigma:.0f}",
                    f"{paper.mean:.0f}±{paper.sigma:.0f}{flag}",
                    f"{sec / paper.mean:.2f}",
                )
    return t.render(), cells


def table6(cells: Dict = None) -> Tuple[str, Dict]:
    """Regenerate Table 6 (component breakdowns)."""
    cells = cells or measure_all_cells()
    t = Table(
        ["App", "PEs", "op", "total s (paper)", "rate (paper)",
         "seg % (paper)", "seg MB/s (paper)", "arr % (paper)", "arr MB/s (paper)"],
        title="Table 6: components of DRMS checkpoint and restart operations",
    )
    for name in APPS:
        for pes in (8, 16):
            cell = cells[(name, pes)]
            for op, bd in (
                ("checkpoint", cell.drms_ckpt),
                ("restart", cell.drms_restart),
            ):
                paper = PAPER_TABLE6[name][(pes, op)]
                t.add_row(
                    name.upper(), pes, op,
                    f"{bd.total_seconds:.1f} ({paper.total_s})",
                    f"{bd.rate_mbps:.1f} ({paper.total_rate})",
                    f"{100 * bd.segment_seconds / bd.total_seconds:.0f} ({paper.segment_pct})",
                    f"{bd.segment_rate_mbps:.1f} ({paper.segment_rate})",
                    f"{100 * bd.arrays_seconds / bd.total_seconds:.0f} ({paper.arrays_pct})",
                    f"{bd.arrays_rate_mbps:.1f} ({paper.arrays_rate})",
                )
    return t.render(), cells


def figure7(cells: Dict = None) -> Tuple[str, Dict]:
    """Regenerate Figure 7 (stacked component bars, ASCII)."""
    cells = cells or measure_all_cells()
    series = {}
    for pes in (8, 16):
        for name in APPS:
            cell = cells[(name, pes)]
            series[f"{pes:2}PE {name.upper()} C"] = {
                "segment": cell.drms_ckpt.segment_seconds,
                "arrays": cell.drms_ckpt.arrays_seconds,
            }
            series[f"{pes:2}PE {name.upper()} R"] = {
                "segment": cell.drms_restart.segment_seconds,
                "arrays": cell.drms_restart.arrays_seconds,
                "other": cell.drms_restart.other_seconds,
            }
    chart = bar_chart(
        series,
        title="Figure 7: components of DRMS checkpoint (C) and restart (R) times",
        unit="s",
    )
    return chart, cells
