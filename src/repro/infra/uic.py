"""The User Interface Coordinator: the user/administrator facade."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.infra.events import Event, EventLog
from repro.infra.jsa import JobSchedulerAnalyzer, JobState

__all__ = ["UserInterfaceCoordinator"]


class UserInterfaceCoordinator:
    """Thin interface between users and the DRMS environment: job
    submission/queries plus the notification stream (the paper's "the
    user of the application is informed")."""

    def __init__(self, jsa: JobSchedulerAnalyzer, events: Optional[EventLog] = None):
        self.jsa = jsa
        self.events = events if events is not None else jsa.events

    # -- user actions --------------------------------------------------------

    def submit(self, job_id: str, app, args=(), kwargs=None, prefix: str = "ckpt"):
        return self.jsa.submit(job_id, app, args=args, kwargs=kwargs, prefix=prefix)

    def run(self, job_id: str, ntasks=None):
        return self.jsa.run(job_id, ntasks=ntasks)

    def restart(self, job_id: str, ntasks=None):
        return self.jsa.restart(job_id, ntasks=ntasks)

    # -- queries ----------------------------------------------------------------

    def job_status(self, job_id: str) -> JobState:
        return self.jsa._job(job_id).state

    def notifications(self, job_id: Optional[str] = None) -> List[Event]:
        """User-facing notifications (failures, completions, restarts)."""
        kinds = {
            "user_informed",
            "job_completed",
            "job_restarted",
            "recovery_started",
        }
        return [
            e
            for e in self.events
            if e.kind in kinds
            and (job_id is None or e.detail.get("job") == job_id)
        ]

    def system_status(self) -> Dict[str, Any]:
        """Snapshot of cluster time, node availability, and job states."""
        rc = self.jsa.rc
        return {
            "time": rc.clock,
            "nodes_up": len(rc.machine.up_nodes()),
            "nodes_total": rc.machine.num_nodes,
            "available": len(rc.available_nodes()),
            "jobs": {j: job.state.value for j, job in self.jsa.jobs.items()},
        }
