"""The Job Scheduler and Analyzer.

The JSA assigns processors to applications and schedules them (paper
Section 4).  It exploits reconfigurable checkpointing three ways:

1. user-directed checkpoint/archive/restart (``submit`` + ``restart``);
2. dynamic scheduling: shrink or grow a running job by enabling a
   system-initiated checkpoint (``reconfig_chkenable``) and restarting
   it on a different pool (:meth:`reconfigure`);
3. automatic failure recovery: restart a killed application from its
   latest checkpoint on the surviving processors (:meth:`recover`),
   without waiting for the failed node.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.checkpoint.recover import RecoveryDecision, select_restart_state
from repro.drms.app import DRMSApplication, RunReport
from repro.errors import SchedulerError, TaskFailure
from repro.infra.events import EventLog
from repro.infra.rc import ResourceCoordinator
from repro.obs import get_flight, get_tracer

__all__ = ["JobState", "Job", "JobSchedulerAnalyzer"]


class JobState(enum.Enum):
    """Lifecycle state of a scheduled job."""
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"
    FAILED = "failed"


@dataclass
class Job:
    """One scheduled application."""

    job_id: str
    app: DRMSApplication
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    #: checkpoint prefix this job writes (and recovers from)
    prefix: str = "ckpt"
    state: JobState = JobState.QUEUED
    ntasks: int = 0
    reports: List[RunReport] = field(default_factory=list)

    @property
    def last_report(self) -> Optional[RunReport]:
        return self.reports[-1] if self.reports else None


class JobSchedulerAnalyzer:
    """Processor assignment + checkpoint-aware scheduling policy."""

    def __init__(self, rc: ResourceCoordinator, events: Optional[EventLog] = None):
        self.rc = rc
        self.events = events if events is not None else rc.events
        self.jobs: Dict[str, Job] = {}
        #: optional HealthRegistry re-sampled at job transitions
        self.health = None

    def _sample_health(self) -> None:
        if self.health is not None:
            self.health.sample_jsa(self)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        job_id: str,
        app: DRMSApplication,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        prefix: str = "ckpt",
    ) -> Job:
        """Queue a job (application + args + checkpoint prefix)."""
        if job_id in self.jobs:
            raise SchedulerError(f"duplicate job id {job_id!r}")
        job = Job(
            job_id=job_id,
            app=app,
            args=tuple(args),
            kwargs=dict(kwargs or {}),
            prefix=prefix,
        )
        self.jobs[job_id] = job
        self.events.emit(self.rc.clock, "job_submitted", job=job_id)
        return job

    def pick_ntasks(self, job: Job, want: Optional[int] = None) -> int:
        """Choose a task count within the job's SOQ resource range that
        fits the available processors (largest feasible by default)."""
        avail = len(self.rc.available_nodes())
        soq = job.app.soq
        top = avail if want is None else min(want, avail)
        for n in range(top, 0, -1):
            if soq.valid(n):
                return n
        raise SchedulerError(
            f"job {job.job_id!r}: no valid task count <= {top} "
            f"(resource section: min {soq.min_tasks}, max {soq.max_tasks})"
        )

    # -- execution -----------------------------------------------------------

    def run(self, job_id: str, ntasks: Optional[int] = None) -> RunReport:
        """Start a queued job from the beginning."""
        job = self._job(job_id)
        n = self.pick_ntasks(job, ntasks)
        obs = get_tracer()
        obs.sync(self.rc.clock)
        with obs.span("job.run", job=job_id, ntasks=n):
            nodes = self.rc.form_pool(job_id, n)
            job.state = JobState.RUNNING
            job.ntasks = n
            try:
                report = job.app.start(
                    n, args=job.args, kwargs=job.kwargs, nodes=nodes
                )
            except TaskFailure:
                # Pool stays attached: the RC's failure protocol owns the
                # cleanup (it must see which pool the dead TC belonged to).
                job.state = JobState.KILLED
                raise
            except Exception:
                job.state = JobState.KILLED
                self.rc.release_pool(job_id)
                raise
            self.rc.release_pool(job_id)
            job.state = JobState.COMPLETED
            job.reports.append(report)
            self.rc.advance(report.sim_elapsed)
            obs.sync(self.rc.clock)
        self.events.emit(
            self.rc.clock, "job_completed", job=job_id, ntasks=n,
            sim_elapsed=report.sim_elapsed,
        )
        get_flight().record(
            "job_completed", time=self.rc.clock, job=job_id, ntasks=n,
        )
        self._sample_health()
        return report

    def restart(self, job_id: str, ntasks: Optional[int] = None) -> RunReport:
        """Restart a job from the newest checkpointed state under its
        prefix that passes integrity validation, on a (possibly
        different-sized) pool of currently available processors.
        Corrupt newer states are skipped — each rejection and the
        eventual fallback are recorded in the event log."""
        job = self._job(job_id)
        obs = get_tracer()
        obs.sync(self.rc.clock)
        with obs.span("job.restart", job=job_id) as sp:
            decision = self._select_state(job)
            if decision.prefix is None:
                raise SchedulerError(
                    f"job {job_id!r} has no checkpoint under prefix "
                    f"{job.prefix!r} that passes validation"
                )
            n = self.pick_ntasks(job, ntasks)
            sp.set(ntasks=n, prefix=decision.prefix)
            nodes = self.rc.form_pool(job_id, n)
            job.state = JobState.RUNNING
            job.ntasks = n
            try:
                report = job.app.restart(
                    decision.prefix, n, args=job.args, kwargs=job.kwargs, nodes=nodes
                )
            except TaskFailure:
                job.state = JobState.KILLED
                raise
            except Exception:
                job.state = JobState.KILLED
                self.rc.release_pool(job_id)
                raise
            self.rc.release_pool(job_id)
            job.state = JobState.COMPLETED
            job.reports.append(report)
            self.rc.advance(report.sim_elapsed)
            obs.sync(self.rc.clock)
        bd = report.restart_breakdown
        restart_seconds = bd.total_seconds if bd is not None else 0.0
        restart_kind = bd.kind if bd is not None else None
        self.events.emit(
            self.rc.clock, "job_restarted", job=job_id, ntasks=n,
            sim_elapsed=report.sim_elapsed,
            prefix=decision.prefix,
            restart_seconds=restart_seconds,
            restart_kind=restart_kind,
        )
        get_flight().record(
            "job_restarted", time=self.rc.clock, job=job_id, ntasks=n,
            prefix=decision.prefix, restart_seconds=restart_seconds,
        )
        self._sample_health()
        return report

    # -- policy hooks -----------------------------------------------------------

    def recover(self, job_id: str, ntasks: Optional[int] = None) -> RunReport:
        """Failure recovery: restart the killed job from its latest
        checkpoint on the surviving processors.  The new pool may be
        smaller (failed node out for repair), equal, or larger."""
        job = self._job(job_id)
        self.events.emit(self.rc.clock, "recovery_started", job=job_id)
        get_flight().record(
            "recovery_started", time=self.rc.clock, job=job_id
        )
        obs = get_tracer()
        obs.sync(self.rc.clock)
        with obs.span("job.recover", job=job_id):
            obs.metrics.counter("jsa.recoveries").inc()
            return self.restart(job_id, ntasks=ntasks)

    def recover_localized(
        self,
        job_id: str,
        placement: Dict[int, int],
        failed_nodes: Sequence[int],
        replacements: Dict[int, int],
    ) -> RunReport:
        """Localized failure recovery: survivors keep their pool slots
        (the RC already patched in the replacement nodes), everyone
        rolls back to the newest satisfiable generation, and only the
        lost ranks' sections move over the switch
        (:mod:`repro.mlck.localized`).  ``placement`` is the pre-failure
        ``{rank: node}`` map; ``replacements`` maps each failed node to
        the node that took over its ranks."""
        job = self._job(job_id)
        self.events.emit(
            self.rc.clock, "recovery_started", job=job_id, localized=True
        )
        get_flight().record(
            "recovery_started", time=self.rc.clock, job=job_id,
            localized=True,
        )
        obs = get_tracer()
        obs.sync(self.rc.clock)
        with obs.span("job.recover", job=job_id, localized=True) as sp:
            obs.metrics.counter("jsa.recoveries").inc()
            decision = self._select_state(job)
            if decision.prefix is None:
                raise SchedulerError(
                    f"job {job_id!r} has no checkpoint under prefix "
                    f"{job.prefix!r} that passes validation"
                )
            n = len(placement)
            pool = self.rc.pool_of(job_id)
            if len(pool) != n:
                raise SchedulerError(
                    f"localized recovery keeps the task count: pool has "
                    f"{len(pool)} nodes for {n} ranks"
                )
            sp.set(ntasks=n, prefix=decision.prefix)
            # lost rank -> its replacement node
            rank_replacements = {
                r: replacements[nd]
                for r, nd in placement.items()
                if nd in replacements
            }
            job.state = JobState.RUNNING
            job.ntasks = n
            try:
                report = job.app.restart_localized(
                    decision.prefix, n,
                    args=job.args, kwargs=job.kwargs, nodes=pool,
                    placement=placement, failed_nodes=failed_nodes,
                    replacements=rank_replacements,
                )
            except TaskFailure:
                job.state = JobState.KILLED
                raise
            except Exception:
                job.state = JobState.KILLED
                self.rc.release_pool(job_id)
                raise
            self.rc.release_pool(job_id)
            job.state = JobState.COMPLETED
            job.reports.append(report)
            self.rc.advance(report.sim_elapsed)
            obs.sync(self.rc.clock)
        bd = report.restart_breakdown
        restart_seconds = bd.total_seconds if bd is not None else 0.0
        restart_kind = bd.kind if bd is not None else None
        scope = report.rebuild_scope
        self.events.emit(
            self.rc.clock, "job_restarted", job=job_id, ntasks=n,
            sim_elapsed=report.sim_elapsed,
            prefix=decision.prefix,
            restart_seconds=restart_seconds,
            restart_kind=restart_kind,
            rebuild_scope=scope.describe() if scope is not None else None,
        )
        get_flight().record(
            "job_restarted", time=self.rc.clock, job=job_id, ntasks=n,
            prefix=decision.prefix, restart_seconds=restart_seconds,
            localized=True,
        )
        self._sample_health()
        return report

    def enable_system_checkpoint(self, job_id: str) -> None:
        """Arm a system-initiated checkpoint: the job's next
        ``reconfig_chkenable`` call writes its state (used before a
        planned shrink/grow or priority preemption)."""
        self._job(job_id).app.enable_checkpoint()
        self.events.emit(self.rc.clock, "checkpoint_enabled", job=job_id)

    def _select_state(self, job: Job) -> RecoveryDecision:
        # Walk the rotation generations (then the bare prefix) newest
        # first, validating each; emits checkpoint_verified /
        # checkpoint_rejected / restart_fallback events.  Applications
        # on the memory+pfs tier contribute their L1 store, upgrading
        # the walk to the tier-aware policy (newest generation
        # satisfiable from any tier, memory replicas preferred).
        l1 = getattr(job.app, "l1_store_for", lambda base: None)(job.prefix)
        if l1 is not None:
            l1.sync_with_machine(clock=self.rc.clock)
        return select_restart_state(
            job.app.pfs,
            job.prefix,
            events=self.events,
            clock=self.rc.clock,
            job=job.job_id,
            l1=l1,
        )

    def _job(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise SchedulerError(f"unknown job {job_id!r}") from None
