"""Cluster event log: the observable record of the DRMS daemons."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped infrastructure event."""

    time: float
    kind: str
    detail: Dict[str, Any]

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:9.3f}s] {self.kind}({items})"

    def to_dict(self) -> Dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "detail": dict(self.detail)}


class EventLog:
    """Append-only event record shared by RC/TCs/JSA/UIC.

    Consumers query it (:meth:`of_kind`, :meth:`between`,
    :meth:`where`) instead of re-filtering ``events`` by hand, export it
    (:meth:`to_json`), or subscribe live (:meth:`subscribe`) — the obs
    bridge mirrors every emit onto a span timeline that way.
    """

    def __init__(self):
        self.events: List[Event] = []
        self._listeners: List[Callable[[Event], None]] = []

    def emit(self, time: float, kind: str, **detail: Any) -> Event:
        """Append one timestamped event (and notify subscribers)."""
        ev = Event(time=time, kind=kind, detail=detail)
        self.events.append(ev)
        for listener in list(self._listeners):
            listener(ev)
        return ev

    # -- live consumers -----------------------------------------------------

    def subscribe(self, listener: Callable[[Event], None]) -> Callable[[Event], None]:
        """Call ``listener(event)`` on every future emit; returns the
        listener so callers can hold it for :meth:`unsubscribe`."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: Callable[[Event], None]) -> None:
        """Stop notifying ``listener`` (no-op when not subscribed)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- queries ------------------------------------------------------------

    def of_kind(self, kind: str, **detail_filter: Any) -> List[Event]:
        """Events of ``kind`` whose detail matches every given key
        exactly — ``log.of_kind("checkpoint_rejected", job="bt")``."""
        return [
            e
            for e in self.events
            if e.kind == kind
            and all(e.detail.get(k) == v for k, v in detail_filter.items())
        ]

    def between(
        self, t0: float, t1: float, kind: Optional[str] = None
    ) -> List[Event]:
        """Events in the closed time window ``[t0, t1]``, optionally of
        one kind."""
        return [
            e
            for e in self.events
            if t0 <= e.time <= t1 and (kind is None or e.kind == kind)
        ]

    def where(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self.events if predicate(e)]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        seq = self.events if kind is None else self.of_kind(kind)
        return seq[-1] if seq else None

    # -- export -------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """The full log as a JSON array of ``{time, kind, detail}``
        objects (non-JSON detail values fall back to ``repr``)."""
        return json.dumps(
            [e.to_dict() for e in self.events], indent=indent, default=repr
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
