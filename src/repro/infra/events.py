"""Cluster event log: the observable record of the DRMS daemons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Event", "EventLog"]


@dataclass(frozen=True)
class Event:
    """One timestamped infrastructure event."""

    time: float
    kind: str
    detail: Dict[str, Any]

    def __repr__(self) -> str:
        items = ", ".join(f"{k}={v!r}" for k, v in self.detail.items())
        return f"[{self.time:9.3f}s] {self.kind}({items})"


class EventLog:
    """Append-only event record shared by RC/TCs/JSA/UIC."""

    def __init__(self):
        self.events: List[Event] = []

    def emit(self, time: float, kind: str, **detail: Any) -> Event:
        """Append one timestamped event."""
        ev = Event(time=time, kind=kind, detail=detail)
        self.events.append(ev)
        return ev

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        seq = self.events if kind is None else self.of_kind(kind)
        return seq[-1] if seq else None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
