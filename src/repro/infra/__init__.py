"""The DRMS controlling infrastructure (paper Section 4).

One master daemon — the Resource Coordinator (RC) — plus one Task
Coordinator (TC) per processor, a Job Scheduler and Analyzer (JSA) that
assigns processors and drives checkpoint-based rescheduling, and a thin
User Interface Coordinator (UIC).  The basic failure event is a
processor failure, detected as the loss of the TC connection; recovery
kills the application, returns surviving TCs to the pool, and restarts
the application from its latest checkpoint on an equal, larger, or
smaller pool — without waiting for the failed node to be repaired.
"""

from repro.infra.events import Event, EventLog
from repro.infra.tc import TaskCoordinator, TCState
from repro.infra.rc import ResourceCoordinator
from repro.infra.jsa import Job, JobSchedulerAnalyzer, JobState
from repro.infra.uic import UserInterfaceCoordinator
from repro.infra.failure import FailurePlan, NodeFailure
from repro.infra.cluster import DRMSCluster, RecoveryOutcome
from repro.infra.study import JobSpec, SchedulingStudy, StudyResult
from repro.infra.fleet import (
    FleetResult,
    FleetSimulation,
    storm_schedule,
    synthetic_stream,
)

__all__ = [
    "Event",
    "EventLog",
    "TaskCoordinator",
    "TCState",
    "ResourceCoordinator",
    "Job",
    "JobSchedulerAnalyzer",
    "JobState",
    "UserInterfaceCoordinator",
    "FailurePlan",
    "NodeFailure",
    "DRMSCluster",
    "RecoveryOutcome",
    "JobSpec",
    "SchedulingStudy",
    "StudyResult",
    "FleetResult",
    "FleetSimulation",
    "storm_schedule",
    "synthetic_stream",
]
