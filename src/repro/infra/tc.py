"""Task Coordinators: one per processor.

The TC controls and monitors the application processes on its node and
interfaces them to the Resource Coordinator.  Its connection to the RC
is the failure detector: a node failure manifests as a lost TC
connection (paper Section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import get_tracer

__all__ = ["TCState", "TaskCoordinator"]


class TCState(enum.Enum):
    """Connection state of a Task Coordinator."""
    #: TC up and connected to the RC; node available or running tasks
    CONNECTED = "connected"
    #: connection lost (node failure); triggers RC recovery
    DISCONNECTED = "disconnected"
    #: RC is bringing the TC back (may require node reboot/repair)
    RESTARTING = "restarting"


@dataclass
class TaskCoordinator:
    """Per-node daemon state."""

    node_id: int
    state: TCState = TCState.CONNECTED
    #: job id of the application whose tasks this TC controls, if any
    job_id: Optional[str] = None
    #: task ranks running under this TC
    ranks: List[int] = field(default_factory=list)

    @property
    def connected(self) -> bool:
        return self.state is TCState.CONNECTED

    @property
    def idle(self) -> bool:
        return self.connected and self.job_id is None

    def attach(self, job_id: str, ranks: List[int]) -> None:
        self.job_id = job_id
        self.ranks = list(ranks)

    def detach(self) -> None:
        self.job_id = None
        self.ranks = []

    def disconnect(self) -> None:
        """The node died under this TC."""
        self.state = TCState.DISCONNECTED
        get_tracer().mark("tc.disconnect", node=self.node_id, job=self.job_id)

    def begin_restart(self) -> None:
        """The RC began bringing this TC back up."""
        self.state = TCState.RESTARTING
        get_tracer().mark("tc.restart", node=self.node_id)

    def reconnect(self) -> None:
        """The TC reactivated; its processor rejoins the available pool."""
        self.state = TCState.CONNECTED
        self.detach()
        get_tracer().mark("tc.reconnect", node=self.node_id)
