"""Failure injection.

The basic DRMS failure event is a processor failure.  A
:class:`FailurePlan` arms a deterministic failure: when the application
reaches the given iteration, the task placed on the doomed node raises
:class:`NodeFailure`; the SPMD engine then kills the whole task group —
exactly the paper's premise that a single component failure crashes the
entire parallel application — and the Resource Coordinator's recovery
protocol takes over.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TaskFailure

__all__ = ["NodeFailure", "FailurePlan"]


class NodeFailure(TaskFailure):
    """A processor died under a running task."""

    def __init__(self, node_id: int, message: str = ""):
        super().__init__(message or f"node {node_id} failed")
        self.node_id = node_id


@dataclass
class FailurePlan:
    """Fail ``node_id`` when the application reaches ``iteration``.

    ``one_shot``: the plan disarms after firing so the restarted run
    survives (the standard recovery experiment).

    Task threads check the plan concurrently — several tasks may share
    the doomed node — so disarming must be atomic: :meth:`claim` is the
    check-and-fire used by the runtime, guaranteeing a one-shot plan
    fires on exactly one task even under racing threads.
    """

    iteration: int
    node_id: int
    one_shot: bool = True
    _fired: bool = False
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def should_fire(self, iteration: int) -> bool:
        """True when the plan triggers at this iteration (advisory: the
        authoritative check-and-disarm is :meth:`claim`)."""
        if self._fired and self.one_shot:
            return False
        return iteration == self.iteration

    def claim(self, iteration: int) -> bool:
        """Atomically check and fire: True for exactly one caller per
        arming of a one-shot plan, False for every other racer."""
        with self._lock:
            if not self.should_fire(iteration):
                return False
            self._fired = True
            return True

    def fire(self) -> None:
        """Mark the plan fired (kept for callers that did their own
        check; racing callers should use :meth:`claim`)."""
        with self._lock:
            self._fired = True

    @property
    def fired(self) -> bool:
        return self._fired
