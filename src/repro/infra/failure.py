"""Failure injection.

The basic DRMS failure event is a processor failure.  A
:class:`FailurePlan` arms a deterministic failure: when the application
reaches the given iteration, the task placed on the doomed node raises
:class:`NodeFailure`; the SPMD engine then kills the whole task group —
exactly the paper's premise that a single component failure crashes the
entire parallel application — and the Resource Coordinator's recovery
protocol takes over.

``multi=`` generalizes the plan to an *ordered schedule* of failures —
``[(iteration, node_id), ...]`` — so partner-loss scenarios of the
multi-level checkpoint store (:mod:`repro.mlck`) can kill a replica
owner and then its partner in sequence.  Entries fire in order; each
entry fires exactly once, and the plan disarms when the schedule is
exhausted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import TaskFailure
from repro.obs import get_flight

__all__ = ["NodeFailure", "FailurePlan"]


class NodeFailure(TaskFailure):
    """A processor died under a running task."""

    def __init__(self, node_id: int, message: str = ""):
        super().__init__(message or f"node {node_id} failed")
        self.node_id = node_id


@dataclass
class FailurePlan:
    """Fail ``node_id`` when the application reaches ``iteration``.

    ``one_shot``: the plan disarms after firing so the restarted run
    survives (the standard recovery experiment).

    ``multi``: an ordered schedule ``[(iteration, node_id), ...]`` of
    several failures.  When given, ``iteration``/``node_id`` track the
    *pending* entry (the one :meth:`claim` would fire next); each entry
    fires once, in order, and the plan disarms after the last.  The
    schedule must be non-decreasing in iteration — a plan cannot fire
    into the past.

    Task threads check the plan concurrently — several tasks may share
    the doomed node — so disarming must be atomic: :meth:`claim` is the
    check-and-fire used by the runtime, guaranteeing a one-shot plan
    fires on exactly one task even under racing threads.
    """

    iteration: int = 0
    node_id: int = 0
    one_shot: bool = True
    multi: Optional[Sequence[Tuple[int, int]]] = None
    _fired: bool = False
    #: nodes whose scheduled failure has fired, in firing order
    fired_nodes: List[int] = field(default_factory=list)
    #: iteration each firing happened at, parallel to ``fired_nodes`` —
    #: lets a recovery handler spot same-iteration (simultaneous) groups
    fired_at: List[int] = field(default_factory=list)
    _multi_idx: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.multi is not None:
            schedule = [(int(it), int(nd)) for it, nd in self.multi]
            if not schedule:
                raise ValueError("multi= schedule must not be empty")
            its = [it for it, _ in schedule]
            if its != sorted(its):
                raise ValueError(
                    "multi= schedule must be ordered by iteration"
                )
            self.multi = schedule
            # expose the pending entry through the classic fields
            self.iteration, self.node_id = schedule[0]

    def should_fire(self, iteration: int) -> bool:
        """True when the plan triggers at this iteration (advisory: the
        authoritative check-and-disarm is :meth:`claim`)."""
        if self.multi is not None:
            return (
                self._multi_idx < len(self.multi)
                and self.multi[self._multi_idx][0] == iteration
            )
        if self._fired and self.one_shot:
            return False
        return iteration == self.iteration

    def claim(self, iteration: int) -> bool:
        """Atomically check and fire: True for exactly one caller per
        arming of a one-shot plan (per schedule entry under ``multi``),
        False for every other racer."""
        with self._lock:
            if not self.should_fire(iteration):
                return False
            if self.multi is not None:
                _, node = self.multi[self._multi_idx]
                self.fired_nodes.append(node)
                self.fired_at.append(iteration)
                self._multi_idx += 1
                if self._multi_idx < len(self.multi):
                    # advance the classic fields to the pending entry
                    self.iteration, self.node_id = self.multi[self._multi_idx]
                else:
                    # exhausted: node_id reports the last fired node so
                    # the cluster's recovery handler sees the right one
                    self.node_id = node
                    self._fired = True
                get_flight().record(
                    "failure_plan_fired", node=node, iteration=iteration
                )
                return True
            self.fired_nodes.append(self.node_id)
            self.fired_at.append(iteration)
            self._fired = True
            get_flight().record(
                "failure_plan_fired", node=self.node_id, iteration=iteration
            )
            return True

    def drain_simultaneous(self) -> List[int]:
        """Fire every remaining ``multi=`` entry scheduled at the same
        iteration as the last fired entry, returning the fired nodes.

        The crash of the first same-iteration victim kills the whole
        task group before its siblings' claims can run, so entries
        meant to strike *simultaneously* would otherwise stay pending.
        A localized recovery handler drains them into one correlated
        failure event before computing the rebuild scope."""
        with self._lock:
            if self.multi is None or not self.fired_at:
                return []
            it = self.fired_at[-1]
            fired: List[int] = []
            while (
                self._multi_idx < len(self.multi)
                and self.multi[self._multi_idx][0] == it
            ):
                _, node = self.multi[self._multi_idx]
                self.fired_nodes.append(node)
                self.fired_at.append(it)
                self._multi_idx += 1
                fired.append(node)
                get_flight().record(
                    "failure_plan_fired", node=node, iteration=it
                )
            if self._multi_idx < len(self.multi):
                self.iteration, self.node_id = self.multi[self._multi_idx]
            elif fired:
                self.node_id = fired[-1]
                self._fired = True
            return fired

    def fire(self) -> None:
        """Mark the plan fired (kept for callers that did their own
        check; racing callers should use :meth:`claim`)."""
        with self._lock:
            self._fired = True

    @property
    def fired(self) -> bool:
        """True once the plan (or, under ``multi``, its whole schedule)
        has fired."""
        return self._fired

    @property
    def pending(self) -> Optional[Tuple[int, int]]:
        """The ``(iteration, node_id)`` entry :meth:`claim` would fire
        next, or None when the plan is exhausted."""
        if self.multi is not None:
            if self._multi_idx < len(self.multi):
                return self.multi[self._multi_idx]
            return None
        if self._fired and self.one_shot:
            return None
        return (self.iteration, self.node_id)
