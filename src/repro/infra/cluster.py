"""DRMSCluster: the wired-up environment, plus the recovery scenario.

Combines one machine, one PIOFS instance, and the four daemons.  The
headline capability (paper Section 4, item 3): run an application with
an armed failure plan; when the node dies mid-run the application
crashes, the RC executes its recovery protocol, and the JSA restarts the
application from its latest checkpoint on the *surviving* nodes — the
restart never waits for the failed node's repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.drms.app import DRMSApplication, RunReport
from repro.errors import TaskFailure
from repro.infra.events import EventLog
from repro.infra.failure import FailurePlan, NodeFailure
from repro.infra.jsa import JobSchedulerAnalyzer
from repro.infra.rc import ResourceCoordinator
from repro.infra.uic import UserInterfaceCoordinator
from repro.obs import HealthRegistry, get_flight
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine

__all__ = ["DRMSCluster", "RecoveryOutcome"]


@dataclass
class RecoveryOutcome:
    """What happened across a failure + recovery scenario."""

    failed_node: Optional[int]
    tasks_before: int
    tasks_after: int
    final_report: RunReport
    #: simulated time from failure detection to the restarted run's launch
    recovery_latency_s: float
    #: simulated time until the failed node itself is repaired
    node_repair_s: float
    events: List[Any] = field(default_factory=list)
    #: all nodes lost in the incident (multi-failure scenarios list
    #: every victim; ``failed_node`` keeps the first for compatibility)
    failed_nodes: List[int] = field(default_factory=list)
    #: localized recovery only: what was rebuilt, and for whom
    rebuild_scope: Optional[Any] = None

    @property
    def recovered_without_repair(self) -> bool:
        """The paper's claim: restart does not wait for the repair."""
        return self.recovery_latency_s < self.node_repair_s


class DRMSCluster:
    """One complete DRMS installation."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        pfs: Optional[PIOFS] = None,
        tc_restart_s: float = 5.0,
        node_repair_s: float = 600.0,
        detection_s: float = 2.0,
    ):
        self.machine = machine or Machine()
        self.pfs = pfs or PIOFS(machine=self.machine)
        self.events = EventLog()
        self.rc = ResourceCoordinator(
            self.machine,
            events=self.events,
            tc_restart_s=tc_restart_s,
            node_repair_s=node_repair_s,
        )
        self.jsa = JobSchedulerAnalyzer(self.rc, events=self.events)
        self.uic = UserInterfaceCoordinator(self.jsa, events=self.events)
        self.detection_s = float(detection_s)
        # One health registry for the whole installation; the daemons
        # re-sample it at their interesting moments.
        self.health = HealthRegistry()
        self.rc.health = self.health
        self.jsa.health = self.health

    def build_app(self, main, name: str = "app", **options: Any) -> DRMSApplication:
        """An application bound to this cluster's machine and PIOFS."""
        app = DRMSApplication(
            main, name=name, machine=self.machine, pfs=self.pfs, **options
        )
        # Memory-tier replica placement and drain events land on the
        # cluster log, interleaved with the daemons' own events.
        app.events = self.events
        app.health = self.health
        return app

    # -- failure-domain queries ------------------------------------------------

    def failure_domain_of(self, node_id: int) -> int:
        """The failure domain (frame/rack block) holding ``node_id``."""
        return self.machine.domain_of(node_id)

    def domain_nodes(self, domain: int) -> List[int]:
        """All node ids in one failure domain."""
        return self.machine.domain_nodes(domain)

    def partners_for(self, node_id: int, k: int = 1) -> List[int]:
        """Replica partners an L1 store would pick for ``node_id``: up
        nodes outside its failure domain.  A degenerate single-domain
        cluster falls back to same-domain partners and records an
        ``mlck_partner_fallback`` warning on the cluster event log."""
        from repro.mlck.placement import select_partners

        return select_partners(
            self.machine, node_id, k=k, events=self.events, clock=self.rc.clock
        )

    # -- the failure/recovery scenario -----------------------------------------

    def run_with_recovery(
        self,
        job_id: str,
        app: DRMSApplication,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        prefix: str = "ckpt",
        failure: Optional[FailurePlan] = None,
        restart_ntasks: Optional[int] = None,
    ) -> RecoveryOutcome:
        """Run ``app``; if a processor fails mid-run, recover it from
        its latest checkpoint on the surviving nodes and run to
        completion.  Without a failure plan this is a plain run."""
        job = self.jsa.submit(job_id, app, args=args, kwargs=kwargs, prefix=prefix)
        app.failure_plan = failure
        try:
            report = self.jsa.run(job_id, ntasks=ntasks)
            self.health.sample_cluster(self, apps=[app])
            return RecoveryOutcome(
                failed_node=None,
                tasks_before=ntasks,
                tasks_after=ntasks,
                final_report=report,
                recovery_latency_s=0.0,
                node_repair_s=self.rc.node_repair_s,
                events=list(self.events),
            )
        except NodeFailure as exc:
            failed_node = exc.node_id
        except TaskFailure:
            # A sibling task's failure echo won: find the failed node
            # from the armed plan.
            if failure is None or not failure.fired:
                raise
            failed_node = failure.node_id
        finally:
            app.failure_plan = None

        # Anchor the forensic timeline at the instant the node died,
        # before the detector delay elapses.
        self.events.emit(
            self.rc.clock, "failure_injected", node=failed_node, job=job_id
        )
        fr = get_flight()
        fr.record(
            "failure_injected", node=failed_node, time=self.rc.clock,
            job=job_id,
        )
        # Failure detected (lost TC connection) after the detector delay.
        self.rc.advance(self.detection_s)
        t_fail = self.rc.clock
        self.rc.handle_processor_failure(failed_node)
        # The dead node's memory is gone with it: drop any L1 replica
        # copies it held so the tier-aware recovery walk sees the loss.
        app.on_node_failure(failed_node, clock=self.rc.clock)
        # The RC (or the L1 drop) already snapshotted the dead node's
        # ring; this is the backstop for non-mlck configurations.
        fr.auto_blackbox(
            failed_node, reason="failure plan fired", time=self.rc.clock
        )

        # The JSA restarts the job from its latest checkpoint on the
        # surviving processors.  It does NOT wait for the repair.
        report = self.jsa.recover(job_id, ntasks=restart_ntasks)
        latency = report.restart_breakdown.total_seconds + (
            self.rc.tc_restart_s + self.detection_s
        )
        self.health.sample_cluster(self, apps=[app])
        return RecoveryOutcome(
            failed_node=failed_node,
            tasks_before=ntasks,
            tasks_after=report.ntasks,
            final_report=report,
            recovery_latency_s=latency,
            node_repair_s=self.rc.node_repair_s,
            events=list(self.events),
            failed_nodes=[failed_node],
        )

    def run_with_localized_recovery(
        self,
        job_id: str,
        app: DRMSApplication,
        ntasks: int,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        prefix: str = "ckpt",
        failure: Optional[FailurePlan] = None,
    ) -> RecoveryOutcome:
        """Run ``app``; on node failure, recover *locally*: survivors
        quiesce at the next SOP instead of being killed, idle
        processors replace the dead pool members, everyone rolls back
        to the newest satisfiable generation with survivor-local data
        movement, the lost replicas are re-placed outside the
        replacement nodes' failure domains, and the run resumes on the
        same task count.  Entries of a ``FailurePlan(multi=)`` schedule
        that share the crash iteration strike as one simultaneous
        multi-node failure."""
        job = self.jsa.submit(
            job_id, app, args=args, kwargs=kwargs, prefix=prefix
        )
        del job
        app.failure_plan = failure
        try:
            report = self.jsa.run(job_id, ntasks=ntasks)
            self.health.sample_cluster(self, apps=[app])
            return RecoveryOutcome(
                failed_node=None,
                tasks_before=ntasks,
                tasks_after=ntasks,
                final_report=report,
                recovery_latency_s=0.0,
                node_repair_s=self.rc.node_repair_s,
                events=list(self.events),
            )
        except NodeFailure as exc:
            failed_nodes = [exc.node_id]
        except TaskFailure:
            if failure is None or not failure.fired_nodes:
                raise
            failed_nodes = [failure.fired_nodes[-1]]
        finally:
            app.failure_plan = None

        # Same-iteration schedule entries strike together: the first
        # victim's crash killed the task group before its siblings'
        # claims could run, so drain them into this incident.
        if failure is not None:
            for node in failure.drain_simultaneous():
                if node not in failed_nodes:
                    failed_nodes.append(node)
                    if self.machine.node(node).up:
                        self.machine.fail_node(node)

        # The pre-failure placement, before the RC patches the pool.
        placement = {
            rank: nid for rank, nid in enumerate(self.rc.pool_of(job_id))
        }
        fr = get_flight()
        for node in failed_nodes:
            self.events.emit(
                self.rc.clock, "failure_injected", node=node, job=job_id
            )
            fr.record(
                "failure_injected", node=node, time=self.rc.clock,
                job=job_id,
            )
        # Failure detected after the detector delay; survivors quiesce
        # at the last SOP the group crossed before the crash.
        self.rc.advance(self.detection_s)
        quiesce = app.sop_quiescence()
        self.events.emit(
            self.rc.clock, "survivors_quiesced", job=job_id,
            nodes=[n for n in placement.values() if n not in failed_nodes],
            **(quiesce or {}),
        )
        replacements = self.rc.handle_localized_failure(
            failed_nodes, job_id=job_id
        )
        for node in failed_nodes:
            app.on_node_failure(node, clock=self.rc.clock)
            fr.auto_blackbox(
                node, reason="failure plan fired", time=self.rc.clock
            )

        report = self.jsa.recover_localized(
            job_id, placement, failed_nodes, replacements
        )
        latency = report.restart_breakdown.total_seconds + (
            self.rc.tc_restart_s + self.detection_s
        )
        self.health.sample_cluster(self, apps=[app])
        return RecoveryOutcome(
            failed_node=failed_nodes[0],
            tasks_before=ntasks,
            tasks_after=report.ntasks,
            final_report=report,
            recovery_latency_s=latency,
            node_repair_s=self.rc.node_repair_s,
            events=list(self.events),
            failed_nodes=list(failed_nodes),
            rebuild_scope=report.rebuild_scope,
        )
