"""Scheduling-flexibility study (the paper's Section 8 future work).

The conclusions argue that reconfigurable checkpoint/restart benefits
resource scheduling — long-running jobs can be shrunk, grown, or parked
as load changes — and promise to "quantify these results in a future
publication".  This module is that quantification, as a deterministic
event-driven study at the JSA level.

Two policies over the same job stream on the same machine:

* **rigid** — conventional checkpointing: a job runs on exactly its
  requested task count; it waits in the queue until that many
  processors are free and never changes size (an SPMD checkpoint can
  only restart at the same size).
* **reconfigurable** — DRMS checkpointing: a job may start on any count
  within its SOQ resource range (``min_tasks``..``max_tasks``) and the
  scheduler may reconfigure it (checkpoint + reconfigured restart,
  paying ``reconfig_cost_s``) to expand into idle processors whenever
  another job completes.

Jobs are perfectly parallel within their valid range (work measured in
node-seconds); both policies use the same FCFS queue.  Metrics:
makespan, mean response time, and machine utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SchedulerError

__all__ = ["JobSpec", "StudyResult", "SchedulingStudy", "equipartition_targets"]


@dataclass(frozen=True)
class JobSpec:
    """One job in the stream."""

    name: str
    #: total work in node-seconds
    work: float
    #: rigid request / reconfigurable maximum
    max_tasks: int
    #: reconfigurable minimum (SOQ resource section lower bound)
    min_tasks: int = 1
    arrival: float = 0.0

    def __post_init__(self):
        if self.work <= 0 or self.max_tasks < 1 or self.min_tasks < 1:
            raise SchedulerError(f"invalid job spec {self.name!r}")
        if self.min_tasks > self.max_tasks:
            raise SchedulerError(
                f"{self.name!r}: min_tasks {self.min_tasks} > max_tasks {self.max_tasks}"
            )


@dataclass
class _Running:
    spec: JobSpec
    ntasks: int
    remaining: float  # node-seconds still to do
    #: absolute time before which the job does no useful work
    #: (start-up or reconfiguration overhead)
    blocked_until: float
    reconfigs: int = 0


@dataclass
class StudyResult:
    policy: str
    makespan: float
    mean_response: float
    utilization: float
    completions: Dict[str, float]
    reconfigurations: int

    def row(self) -> Tuple:
        """The result as a printable table row."""
        return (
            self.policy,
            f"{self.makespan:.0f}",
            f"{self.mean_response:.0f}",
            f"{100 * self.utilization:.1f}%",
            self.reconfigurations,
        )


def equipartition_targets(
    num_nodes: int,
    running: List["_Running"],
    reconfig_cost_s: float,
) -> Dict[str, int]:
    """The reconfigurable policy's task-count targets: split
    ``num_nodes`` near-evenly over the running jobs (leftovers to the
    earliest arrivals), clamped to each job's SOQ range.

    Growth is *optional*: a job whose remaining work would not repay
    one checkpoint + reconfigured restart declines it, and — this was
    the stranded-surplus bug — its declined share is re-offered to the
    other growable jobs instead of idling.  Shrinks (and initial
    placements, ``ntasks == 0``) are never declined.  The returned
    targets leave a node idle only when every running job is capped: at
    its ``max_tasks``, or holding at its current size having declined
    growth.
    """
    if not running:
        return {}
    base = num_nodes // len(running)
    extra = num_nodes - base * len(running)
    order = sorted(running, key=lambda r: (r.spec.arrival, r.spec.name))
    targets: Dict[str, int] = {}
    for i, r in enumerate(order):
        n = base + (1 if i < extra else 0)
        targets[r.spec.name] = max(r.spec.min_tasks, min(r.spec.max_tasks, n))
    # clamping may oversubscribe; trim the largest jobs first
    while sum(targets.values()) > num_nodes:
        victim = max(
            (r for r in order if targets[r.spec.name] > r.spec.min_tasks),
            key=lambda r: targets[r.spec.name],
            default=None,
        )
        if victim is None:
            raise SchedulerError("minimum task counts exceed the machine")
        targets[victim.spec.name] -= 1
    # growth is optional: a nearly-done job declines (the checkpoint +
    # restart would not pay off before it completes) and holds at its
    # current size — never above it
    declined = {
        r.spec.name
        for r in order
        if r.ntasks != 0
        and targets[r.spec.name] > r.ntasks
        and r.remaining <= reconfig_cost_s * r.ntasks
    }
    for r in order:
        if r.spec.name in declined:
            targets[r.spec.name] = r.ntasks
    # distribute the remaining nodes — clamping slack plus declined
    # shares — to the earliest growable jobs
    spare = num_nodes - sum(targets.values())
    for r in order:
        if spare <= 0:
            break
        if r.spec.name in declined:
            continue
        grow = min(spare, r.spec.max_tasks - targets[r.spec.name])
        targets[r.spec.name] += grow
        spare -= grow
    assert spare == 0 or all(
        targets[r.spec.name] == r.spec.max_tasks or r.spec.name in declined
        for r in order
    ), "idle nodes stranded while a growable job sits below max_tasks"
    return targets


class SchedulingStudy:
    """Run one job stream under both policies."""

    def __init__(
        self,
        num_nodes: int,
        jobs: List[JobSpec],
        reconfig_cost_s: float = 60.0,
        max_events: int = 100_000,
    ):
        if num_nodes < 1:
            raise SchedulerError("study needs at least one node")
        for j in jobs:
            if j.min_tasks > num_nodes:
                raise SchedulerError(
                    f"{j.name!r} cannot ever run: min {j.min_tasks} > {num_nodes} nodes"
                )
            if j.max_tasks > num_nodes:
                raise SchedulerError(
                    f"{j.name!r} requests {j.max_tasks} tasks on a "
                    f"{num_nodes}-node machine: the rigid policy runs a "
                    "job at exactly its requested count and no longer "
                    "clamps oversize requests silently; clamp max_tasks "
                    "at submission if shrink-to-fit is intended"
                )
        self.num_nodes = num_nodes
        self.jobs = sorted(jobs, key=lambda j: (j.arrival, j.name))
        self.reconfig_cost_s = float(reconfig_cost_s)
        self.max_events = max_events
        #: optional HealthRegistry re-sampled each scheduling step
        #: (health.fleet.* occupancy gauges)
        self.health = None

    # -- public -------------------------------------------------------------

    def run(self, policy: str) -> StudyResult:
        """Simulate the job stream under one policy; returns the metrics."""
        if policy not in ("rigid", "reconfigurable"):
            raise SchedulerError(f"unknown policy {policy!r}")
        return self._simulate(reconfigurable=(policy == "reconfigurable"))

    def compare(self) -> Dict[str, StudyResult]:
        return {p: self.run(p) for p in ("rigid", "reconfigurable")}

    # -- the event loop ------------------------------------------------------

    def _simulate(self, reconfigurable: bool) -> StudyResult:
        t = 0.0
        queue: List[JobSpec] = []
        pending = list(self.jobs)  # not yet arrived
        running: List[_Running] = []
        completions: Dict[str, float] = {}
        busy_nodeseconds = 0.0
        reconfig_count = 0

        def free_nodes() -> int:
            return self.num_nodes - sum(r.ntasks for r in running)

        def admit() -> None:
            nonlocal reconfig_count
            if not reconfigurable:
                # FCFS, exact-size allocation, no resizing ever
                while queue:
                    spec = queue[0]
                    want = spec.max_tasks
                    if free_nodes() < want:
                        break
                    queue.pop(0)
                    running.append(
                        _Running(spec=spec, ntasks=want, remaining=spec.work,
                                 blocked_until=t)
                    )
                return

            # Reconfigurable policy: equipartition.  Admit queued jobs
            # whenever shrinking the running set (never below each
            # job's SOQ minimum) can free their minimum; then split the
            # machine near-evenly across all running jobs, clamped to
            # [min_tasks, max_tasks].  Every resize models one
            # checkpoint + reconfigured restart (reconfig_cost_s).
            while queue:
                spec = queue[0]
                # feasible iff every running job can shrink to its SOQ
                # minimum and the newcomer's minimum still fits
                committed = sum(r.spec.min_tasks for r in running)
                if committed + spec.min_tasks > self.num_nodes:
                    break
                queue.pop(0)
                running.append(
                    _Running(spec=spec, ntasks=0, remaining=spec.work,
                             blocked_until=t)
                )
            if not running:
                return
            # near-even split with decline-aware spare redistribution
            # (growth declines are resolved inside the target
            # computation, so a declined share reaches other jobs)
            targets = equipartition_targets(
                self.num_nodes, running, self.reconfig_cost_s
            )
            for r in sorted(running, key=lambda r: (r.spec.arrival, r.spec.name)):
                n = targets[r.spec.name]
                if n == r.ntasks:
                    continue
                # shrinks are mandatory (they free the nodes an admitted
                # job was promised); initial placement (ntasks == 0) is
                # a plain start, not a reconfiguration
                if r.ntasks != 0:
                    r.reconfigs += 1
                    reconfig_count += 1
                    r.blocked_until = max(r.blocked_until, t) + self.reconfig_cost_s
                r.ntasks = n

        for _ in range(self.max_events):
            # arrivals at time t
            while pending and pending[0].arrival <= t:
                queue.append(pending.pop(0))
            admit()
            if self.health is not None:
                occupied = sum(r.ntasks for r in running)
                self.health.sample_fleet(
                    running=len(running),
                    queued=len(queue),
                    utilization=occupied / self.num_nodes,
                )
            if not running and not queue and not pending:
                break
            # next event: earliest completion or next arrival
            horizons = []
            for r in running:
                start = max(t, r.blocked_until)
                horizons.append(start + r.remaining / r.ntasks)
            if pending:
                horizons.append(pending[0].arrival)
            if not horizons:
                raise SchedulerError("deadlock: queued jobs but nothing can run")
            t_next = min(horizons)
            # progress all running jobs to t_next
            done_now = []
            for r in running:
                start = max(t, r.blocked_until)
                work_dt = max(0.0, t_next - start)
                did = min(r.remaining, work_dt * r.ntasks)
                r.remaining -= did
                busy_nodeseconds += did
                if r.remaining <= 1e-9:
                    done_now.append(r)
            t = t_next
            for r in done_now:
                running.remove(r)
                completions[r.spec.name] = t
        else:
            raise SchedulerError("event budget exhausted (livelock?)")

        makespan = max(completions.values(), default=0.0)
        responses = [completions[j.name] - j.arrival for j in self.jobs]
        return StudyResult(
            policy="reconfigurable" if reconfigurable else "rigid",
            makespan=makespan,
            mean_response=sum(responses) / len(responses) if responses else 0.0,
            utilization=(
                busy_nodeseconds / (self.num_nodes * makespan) if makespan else 0.0
            ),
            completions=completions,
            reconfigurations=reconfig_count,
        )
