"""The Resource Coordinator: the DRMS master daemon.

The RC owns one TC per processor and the TC pools of running
applications.  On losing a TC connection it executes the paper's
five-step recovery protocol (Section 4):

1. determine which application/TC pool the disconnected TC belongs to;
2. kill the application's other processes and the pool's TCs;
3. consider the application terminated and inform the user;
4. try to restart the killed TCs (the failed node may first need a
   reboot or repair — modeled by ``node_repair_s``);
5. as each TC reactivates, return its processor to the available pool.

The system stays up throughout, with reduced processor availability;
restarting the application does not wait for the failed node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import MachineError, SchedulerError
from repro.infra.events import EventLog
from repro.infra.tc import TaskCoordinator, TCState
from repro.obs import get_flight, get_tracer
from repro.runtime.machine import Machine

__all__ = ["ResourceCoordinator"]


class ResourceCoordinator:
    """Master daemon: TC registry, pools, failure detection/recovery."""

    def __init__(
        self,
        machine: Machine,
        events: Optional[EventLog] = None,
        tc_restart_s: float = 5.0,
        node_repair_s: float = 600.0,
    ):
        self.machine = machine
        self.events = events if events is not None else EventLog()
        self.tc_restart_s = float(tc_restart_s)
        self.node_repair_s = float(node_repair_s)
        self.tcs: Dict[int, TaskCoordinator] = {
            n.node_id: TaskCoordinator(n.node_id) for n in machine.nodes
        }
        #: job id -> node ids of its TC pool
        self.pools: Dict[str, List[int]] = {}
        self.clock = 0.0
        #: node id -> simulated time its repair completes
        self.repair_done_at: Dict[int, float] = {}
        #: optional HealthRegistry re-sampled at protocol milestones
        self.health = None

    # -- time -------------------------------------------------------------

    def advance(self, dt: float) -> float:
        """Advance the cluster clock; completes any due node repairs."""
        self.clock += dt
        # Repairs that completed while time advanced bring nodes back.
        for node_id, t in list(self.repair_done_at.items()):
            if self.clock >= t:
                self.machine.repair_node(node_id)
                self.tcs[node_id].reconnect()
                del self.repair_done_at[node_id]
                self.events.emit(self.clock, "node_repaired", node=node_id)
        return self.clock

    # -- pools -------------------------------------------------------------

    def available_nodes(self) -> List[int]:
        """Processors with idle, connected TCs."""
        return sorted(
            nid
            for nid, tc in self.tcs.items()
            if tc.idle and self.machine.node(nid).up
        )

    def form_pool(self, job_id: str, ntasks: int) -> List[int]:
        """Allocate a TC pool of ``ntasks`` processors for a job."""
        avail = self.available_nodes()
        if len(avail) < ntasks:
            raise SchedulerError(
                f"job {job_id!r} needs {ntasks} processors; "
                f"{len(avail)} available"
            )
        nodes = avail[:ntasks]
        for rank, nid in enumerate(nodes):
            self.tcs[nid].attach(job_id, [rank])
        self.pools[job_id] = nodes
        self.events.emit(self.clock, "pool_formed", job=job_id, nodes=nodes)
        return nodes

    def release_pool(self, job_id: str) -> None:
        """Return a completed job's processors to the available pool."""
        for nid in self.pools.pop(job_id, []):
            if self.tcs[nid].connected:
                self.tcs[nid].detach()
        self.events.emit(self.clock, "pool_released", job=job_id)

    def pool_of(self, job_id: str) -> List[int]:
        return list(self.pools.get(job_id, []))

    # -- failure handling (the five-step protocol) -----------------------------

    def handle_processor_failure(self, node_id: int) -> Optional[str]:
        """Run the recovery protocol for a failed processor.  Returns
        the id of the application that was killed (if the node was in a
        pool) so the scheduler can restart it."""
        if node_id not in self.tcs:
            raise MachineError(f"no TC for node {node_id}")
        obs = get_tracer()
        obs.sync(self.clock)
        obs.metrics.counter("rc.failures").inc()
        fr = get_flight()
        with obs.span("rc.failure_protocol", node=node_id) as sp:
            tc = self.tcs[node_id]
            tc.disconnect()
            if self.machine.node(node_id).up:
                self.machine.fail_node(node_id)
            self.events.emit(self.clock, "tc_disconnected", node=node_id)
            fr.record("tc_disconnected", node=node_id, time=self.clock)
            # The node is dead: snapshot its ring before recovery events
            # start landing on the global ring.
            fr.auto_blackbox(
                node_id, reason="processor failure", time=self.clock
            )

            # Step 1: which application/TC pool?
            job_id = tc.job_id
            if job_id is None:
                # Idle node failed: just schedule its repair.
                tc.begin_restart()
                self.repair_done_at[node_id] = self.clock + self.node_repair_s
                self.events.emit(self.clock, "idle_node_failed", node=node_id)
                fr.record("idle_node_failed", node=node_id, time=self.clock)
                if self.health is not None:
                    self.health.sample_rc(self)
                sp.set(job=None, idle=True)
                return None

            # Step 2: kill the application's processes and the pool's TCs.
            pool = self.pool_of(job_id)
            self.events.emit(self.clock, "application_killed", job=job_id, pool=pool)

            # Step 3: application considered terminated; user informed.
            self.events.emit(self.clock, "user_informed", job=job_id, reason="node failure")

            # Step 4: restart the killed TCs.  Healthy nodes reconnect after
            # a TC restart; the failed node needs repair first.
            for nid in pool:
                self.tcs[nid].begin_restart()
            self.pools.pop(job_id, None)
            for nid in pool:
                if nid == node_id:
                    self.repair_done_at[nid] = self.clock + self.node_repair_s
                    self.events.emit(
                        self.clock,
                        "node_repair_started",
                        node=nid,
                        eta=self.clock + self.node_repair_s,
                    )
                else:
                    # Step 5: reactivated TC returns its node to the pool.
                    self.tcs[nid].reconnect()
            self.advance(self.tc_restart_s)
            obs.sync(self.clock)
            self.events.emit(
                self.clock,
                "tcs_restarted",
                job=job_id,
                healthy=[n for n in pool if n != node_id],
            )
            fr.record(
                "tcs_restarted", time=self.clock, job=job_id,
                failed=node_id, pool=list(pool),
            )
            if self.health is not None:
                self.health.sample_rc(self)
            sp.set(job=job_id, pool=pool)
        return job_id

    # -- localized failure protocol --------------------------------------------

    def handle_localized_failure(
        self, node_ids: List[int], job_id: Optional[str] = None
    ) -> Dict[int, int]:
        """The localized variant of the failure protocol: survivors'
        TCs stay connected (their tasks quiesce at the next SOP instead
        of being killed), only the dead nodes are disconnected, and an
        idle processor replaces each dead pool member.  The job pool is
        patched in place; only the *replacement* TCs pay the TC spawn
        time.  Returns ``{failed node -> replacement node}``.  Raises
        :class:`~repro.errors.SchedulerError` when no idle processor
        can replace a dead pool member — callers then fall back to the
        full kill-and-restart protocol."""
        node_ids = [int(n) for n in node_ids]
        for nid in node_ids:
            if nid not in self.tcs:
                raise MachineError(f"no TC for node {nid}")
        obs = get_tracer()
        obs.sync(self.clock)
        fr = get_flight()
        with obs.span(
            "rc.failure_protocol", nodes=list(node_ids), localized=True
        ) as sp:
            job = job_id
            for nid in node_ids:
                tc = self.tcs[nid]
                if job is None:
                    job = tc.job_id
                obs.metrics.counter("rc.failures").inc()
                tc.disconnect()
                if self.machine.node(nid).up:
                    self.machine.fail_node(nid)
                self.events.emit(self.clock, "tc_disconnected", node=nid)
                fr.record("tc_disconnected", node=nid, time=self.clock)
                fr.auto_blackbox(
                    nid, reason="processor failure", time=self.clock
                )
            replacements: Dict[int, int] = {}
            pool = self.pools.get(job, []) if job is not None else []
            spares = [n for n in self.available_nodes() if n not in pool]
            for nid in node_ids:
                tc = self.tcs[nid]
                ranks = list(tc.ranks)
                tc.begin_restart()
                self.repair_done_at[nid] = self.clock + self.node_repair_s
                self.events.emit(
                    self.clock,
                    "node_repair_started",
                    node=nid,
                    eta=self.clock + self.node_repair_s,
                )
                if nid not in pool:
                    continue
                if not spares:
                    raise SchedulerError(
                        f"no idle processor to replace failed node {nid}; "
                        "localized recovery needs a spare (fall back to "
                        "the full restart protocol)"
                    )
                new = spares.pop(0)
                self.tcs[new].attach(job, ranks)
                pool[pool.index(nid)] = new
                replacements[nid] = new
                self.events.emit(
                    self.clock, "task_migrated", job=job,
                    node=new, from_node=nid, ranks=ranks,
                )
                fr.record(
                    "task_migrated", node=new, time=self.clock,
                    job=job, from_node=nid, ranks=ranks,
                )
            # Only the replacement TCs spawn; survivors never restart.
            self.advance(self.tc_restart_s)
            obs.sync(self.clock)
            if job is not None:
                healthy = [n for n in pool if n not in replacements.values()]
                self.events.emit(
                    self.clock,
                    "tcs_restarted",
                    job=job,
                    healthy=healthy,
                    localized=True,
                    replacements={
                        int(k): int(v) for k, v in replacements.items()
                    },
                )
                fr.record(
                    "tcs_restarted", time=self.clock, job=job,
                    failed=list(node_ids), pool=list(pool), localized=True,
                )
            if self.health is not None:
                self.health.sample_rc(self)
            sp.set(job=job, replacements=dict(replacements))
        return replacements
