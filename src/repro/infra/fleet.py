"""Fleet-scale scheduling-and-cadence study.

:mod:`repro.infra.study` quantifies the Section 8 claim for one job
stream on one failure-free machine.  This module scales the same
question to a *fleet*: thousands of concurrent jobs on a large machine
whose nodes fail — including correlated **failure storms** that sweep
whole failure domains — and asks how the scheduling policy (rigid vs
reconfigurable restart) *and* the checkpoint cadence policy (fixed
interval vs Young/Daly adaptive, via
:func:`repro.policy.rules.young_daly_interval`) interact at scale.

The model is analytic per job, event-driven across the fleet.  A
running job alternates work phases of length ``tau`` (its checkpoint
interval) with checkpoint phases of length ``checkpoint_cost_s``; both
progress and durable state advance in closed form between events, so a
simulation of thousands of jobs costs one event per arrival,
completion, failure, repair — not one per second.  A node failure
kills the whole job running on it (the paper's premise), rolls it back
to its last completed checkpoint, and requeues it: the **rigid** policy
must re-acquire exactly ``max_tasks`` nodes (waiting out repairs if the
machine shrank), the **reconfigurable** policy restarts at whatever
share the equipartition targets grant on the surviving nodes.  The
**adaptive** cadence re-derives ``tau`` from the fleet's *observed*
failure rate at every (re)start anchor; the **fixed** cadence keeps the
configured interval regardless of weather.

Failure storms are deterministic :class:`~repro.infra.failure.FailurePlan`
schedules — ``multi=[(second, node), ...]`` with the plan's ordered
atomic :meth:`~repro.infra.failure.FailurePlan.claim` semantics —
built by :func:`storm_schedule` to strike inside chosen failure
domains (ceil-division frames, matching
:meth:`repro.runtime.machine.Machine.domain_of`).

Outcomes publish as ``fleet.*`` metrics and, when a
:class:`~repro.obs.health.HealthRegistry` is attached, re-sample the
``health.fleet.*`` occupancy gauges at every scheduling step.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchedulerError
from repro.infra.failure import FailurePlan
from repro.infra.study import JobSpec, equipartition_targets
from repro.policy import young_daly_interval

__all__ = [
    "FleetResult",
    "FleetSimulation",
    "cadence_horizon",
    "cadence_progress",
    "storm_schedule",
    "synthetic_stream",
]


# -- closed-form progress under a work/checkpoint cadence ---------------------


def cadence_progress(x: float, tau: float, cost: float) -> float:
    """Per-task work seconds completed after ``x`` active seconds of a
    job that alternates ``tau`` seconds of work with ``cost`` seconds
    of checkpointing."""
    if x <= 0:
        return 0.0
    cycle = tau + cost
    full, into = divmod(x, cycle)
    return full * tau + min(into, tau)


def cadence_horizon(w: float, tau: float, cost: float) -> float:
    """Active seconds needed to complete ``w`` per-task work seconds
    under the ``tau``/``cost`` cadence (the inverse of
    :func:`cadence_progress`; the final partial work phase pays no
    trailing checkpoint)."""
    if w <= 0:
        return 0.0
    cycle = tau + cost
    full = math.floor(w / tau)
    into = w - full * tau
    if into > 1e-9 * max(1.0, w) or full == 0:
        return full * cycle + into
    return (full - 1) * cycle + tau


# -- workload and storm construction ------------------------------------------


def synthetic_stream(
    num_jobs: int,
    num_nodes: int,
    seed: int = 0,
    mean_interarrival_s: float = 30.0,
    mean_work_s: float = 4_000.0,
) -> List[JobSpec]:
    """A deterministic Poisson-ish stream of ``num_jobs`` malleable
    jobs sized for a ``num_nodes`` machine (exponential interarrivals
    and work, task counts spanning 1/32..1/4 of the machine)."""
    if num_jobs < 1 or num_nodes < 4:
        raise SchedulerError("synthetic stream needs >= 1 job and >= 4 nodes")
    rng = random.Random(seed)
    t = 0.0
    jobs: List[JobSpec] = []
    for i in range(num_jobs):
        t += rng.expovariate(1.0 / mean_interarrival_s)
        hi = max(2, int(rng.uniform(num_nodes / 16.0, num_nodes / 4.0)))
        lo = max(1, hi // 8)
        jobs.append(
            JobSpec(
                name=f"job{i:05d}",
                work=max(60.0, rng.expovariate(1.0 / mean_work_s)) * hi,
                max_tasks=hi,
                min_tasks=lo,
                arrival=round(t, 3),
            )
        )
    return jobs


def storm_schedule(
    num_nodes: int,
    num_domains: int,
    domains: Sequence[int],
    start_s: int,
    count: int,
    spacing_s: int = 2,
) -> List[Tuple[int, int]]:
    """A failure-storm schedule for ``FailurePlan(multi=...)``:
    ``count`` node failures starting at ``start_s``, one every
    ``spacing_s`` seconds, striking round-robin across the listed
    failure domains (ceil-division frames of the machine)."""
    frame = -(-num_nodes // num_domains)
    pools = []
    for d in domains:
        nodes = list(range(d * frame, min((d + 1) * frame, num_nodes)))
        if not nodes:
            raise SchedulerError(f"failure domain {d} is empty on {num_nodes} nodes")
        pools.append(nodes)
    schedule: List[Tuple[int, int]] = []
    for i in range(count):
        pool = pools[i % len(pools)]
        node = pool[(i // len(pools)) % len(pool)]
        schedule.append((start_s + i * spacing_s, node))
    return schedule


# -- the simulation -----------------------------------------------------------


@dataclass
class _FleetRunning:
    spec: JobSpec
    ntasks: int
    nodes: List[int]
    #: durable node-seconds (work up to the last completed checkpoint)
    checkpointed: float
    #: absolute time useful work (re)starts at the current size
    active_start: float
    tau: float
    reconfigs: int = 0

    @property
    def remaining(self) -> float:
        """Node-seconds beyond the durable state (the equipartition
        decline heuristic reads this)."""
        return max(0.0, self.spec.work - self.checkpointed)


@dataclass
class FleetResult:
    """Metrics of one fleet run under one (scheduling, cadence) pair."""

    scheduling: str
    cadence: str
    makespan: float
    utilization: float
    mean_response: float
    #: node-seconds of computed-but-never-checkpointed work destroyed
    #: by failures
    lost_work: float
    completed: int
    checkpoints: int
    reconfigurations: int
    restarts: int
    failures: int
    #: mean seconds from a failure to its job computing again
    recovery_latency_mean_s: float

    def row(self) -> Tuple:
        """The result as a printable table row."""
        return (
            f"{self.scheduling}/{self.cadence}",
            f"{self.makespan:.0f}",
            f"{100 * self.utilization:.1f}%",
            f"{self.lost_work:.0f}",
            f"{self.recovery_latency_mean_s:.0f}",
            self.checkpoints,
            self.reconfigurations,
        )


class FleetSimulation:
    """Run one job stream through failure storms under each policy pair."""

    SCHEDULINGS = ("rigid", "reconfigurable")
    CADENCES = ("fixed", "adaptive")

    def __init__(
        self,
        num_nodes: int,
        jobs: Sequence[JobSpec],
        num_domains: int = 4,
        failure_schedule: Optional[Sequence[Tuple[int, int]]] = None,
        checkpoint_cost_s: float = 15.0,
        fixed_interval_s: float = 600.0,
        reconfig_cost_s: float = 30.0,
        restart_cost_s: float = 60.0,
        repair_s: float = 1_800.0,
        max_events: int = 2_000_000,
    ):
        if num_nodes < 1:
            raise SchedulerError("fleet needs at least one node")
        if num_domains < 1 or num_domains > num_nodes:
            raise SchedulerError(
                f"bad domain count {num_domains} for {num_nodes} nodes"
            )
        for j in jobs:
            if j.max_tasks > num_nodes:
                raise SchedulerError(
                    f"{j.name!r} requests {j.max_tasks} tasks on a "
                    f"{num_nodes}-node fleet"
                )
        for second, node in failure_schedule or ():
            if not (0 <= node < num_nodes):
                raise SchedulerError(f"storm targets unknown node {node}")
        self.num_nodes = num_nodes
        self.num_domains = num_domains
        self.jobs = sorted(jobs, key=lambda j: (j.arrival, j.name))
        self.failure_schedule = list(failure_schedule or ())
        self.checkpoint_cost_s = float(checkpoint_cost_s)
        self.fixed_interval_s = float(fixed_interval_s)
        self.reconfig_cost_s = float(reconfig_cost_s)
        self.restart_cost_s = float(restart_cost_s)
        self.repair_s = float(repair_s)
        self.max_events = max_events
        #: optional HealthRegistry re-sampled each scheduling step
        self.health = None
        #: optional MetricsRegistry receiving the fleet.* outcome totals
        self.metrics = None

    # -- public ---------------------------------------------------------------

    def run(self, scheduling: str, cadence: str) -> FleetResult:
        """Simulate the stream under one (scheduling, cadence) pair."""
        if scheduling not in self.SCHEDULINGS:
            raise SchedulerError(f"unknown scheduling policy {scheduling!r}")
        if cadence not in self.CADENCES:
            raise SchedulerError(f"unknown cadence policy {cadence!r}")
        return self._simulate(
            reconfigurable=(scheduling == "reconfigurable"),
            adaptive=(cadence == "adaptive"),
        )

    def compare(self) -> Dict[str, FleetResult]:
        """All four policy pairs, keyed ``<scheduling>/<cadence>``."""
        return {
            f"{s}/{c}": self.run(s, c)
            for s in self.SCHEDULINGS
            for c in self.CADENCES
        }

    # -- the event loop -------------------------------------------------------

    def _simulate(self, reconfigurable: bool, adaptive: bool) -> FleetResult:
        t = 0.0
        pending = list(self.jobs)
        #: FCFS queue: (spec, fail_time or None); failed jobs rejoin at
        #: the head so recovery is not starved by later arrivals
        queue: List[Tuple[JobSpec, Optional[float]]] = []
        running: List[_FleetRunning] = []
        #: durable progress of jobs currently off the machine
        saved: Dict[str, float] = {}
        down: Dict[int, float] = {}  # node -> repair completion time
        free = list(range(self.num_nodes - 1, -1, -1))  # pop() yields lowest
        completions: Dict[str, float] = {}
        latencies: List[float] = []
        plan = (
            FailurePlan(multi=self.failure_schedule)
            if self.failure_schedule
            else None
        )
        C = self.checkpoint_cost_s
        stats = {
            "lost": 0.0, "ckpts": 0, "reconfigs": 0,
            "restarts": 0, "failures": 0,
        }

        def pick_tau(ntasks: int) -> float:
            if not adaptive or stats["failures"] == 0 or t <= 0:
                return self.fixed_interval_s
            node_mtbf = (t * self.num_nodes) / stats["failures"]
            return young_daly_interval(C, node_mtbf / max(1, ntasks))

        def settle(r: _FleetRunning) -> Tuple[float, float]:
            """Advance durable state to time ``t``; returns the
            (durable, in-flight) node-second split of the work done
            since ``active_start``."""
            horizon = cadence_horizon(r.remaining / r.ntasks, r.tau, C)
            x = min(max(0.0, t - r.active_start), horizon)
            cycles = math.floor(x / (r.tau + C))
            durable = r.ntasks * cycles * r.tau
            partial = r.ntasks * cadence_progress(x, r.tau, C) - durable
            r.checkpointed = min(r.spec.work, r.checkpointed + durable)
            stats["ckpts"] += cycles
            return durable, partial

        def start(spec: JobSpec, ntasks: int, fail_t: Optional[float]) -> None:
            nodes = [free.pop() for _ in range(ntasks)]
            cost = self.restart_cost_s if fail_t is not None else 0.0
            r = _FleetRunning(
                spec=spec, ntasks=ntasks, nodes=nodes,
                checkpointed=saved.pop(spec.name, 0.0),
                active_start=t + cost, tau=pick_tau(ntasks),
            )
            running.append(r)
            if fail_t is not None:
                latencies.append(r.active_start - fail_t)
                stats["restarts"] += 1

        def resize(r: _FleetRunning, ntasks: int) -> None:
            # a planned resize checkpoints first (that is the point of
            # reconfigurable restart), so nothing in flight is lost
            _, partial = settle(r)
            r.checkpointed = min(r.spec.work, r.checkpointed + partial)
            stats["ckpts"] += 1
            stats["reconfigs"] += 1
            r.reconfigs += 1
            if ntasks < r.ntasks:
                for _ in range(r.ntasks - ntasks):
                    free.append(r.nodes.pop())
            else:
                r.nodes.extend(free.pop() for _ in range(ntasks - r.ntasks))
            r.ntasks = ntasks
            r.active_start = max(t, r.active_start) + self.reconfig_cost_s
            r.tau = pick_tau(ntasks)

        def fail_node(node: int) -> None:
            stats["failures"] += 1
            if node in down:
                return  # already dark; the storm wasted a strike
            down[node] = t + self.repair_s
            if node in free:
                free.remove(node)
                return
            victim = next((r for r in running if node in r.nodes), None)
            if victim is None:
                return
            _, partial = settle(victim)
            stats["lost"] += partial
            running.remove(victim)
            free.extend(n for n in victim.nodes if n != node)
            saved[victim.spec.name] = victim.checkpointed
            queue.insert(0, (victim.spec, t))

        def admit() -> None:
            if not reconfigurable:
                while queue:
                    spec, fail_t = queue[0]
                    if len(free) < spec.max_tasks:
                        break
                    queue.pop(0)
                    start(spec, spec.max_tasks, fail_t)
                return
            capacity = self.num_nodes - len(down)
            entering: Dict[str, Optional[float]] = {}
            while queue:
                spec, fail_t = queue[0]
                committed = sum(x.spec.min_tasks for x in running)
                if committed + spec.min_tasks > capacity:
                    break
                queue.pop(0)
                entering[spec.name] = fail_t
                running.append(
                    _FleetRunning(
                        spec=spec, ntasks=0, nodes=[],
                        checkpointed=saved.get(spec.name, 0.0),
                        active_start=t, tau=self.fixed_interval_s,
                    )
                )
            if not running:
                return
            targets = equipartition_targets(
                capacity, running, self.reconfig_cost_s
            )
            order = sorted(running, key=lambda r: (r.spec.arrival, r.spec.name))
            # shrink first so freed nodes are in the pool for growers
            for r in order:
                if 0 < targets[r.spec.name] < r.ntasks:
                    resize(r, targets[r.spec.name])
            for r in order:
                n = targets[r.spec.name]
                if n <= r.ntasks:
                    continue
                if r.ntasks == 0:
                    fail_t = entering.get(r.spec.name)
                    running.remove(r)
                    saved[r.spec.name] = r.checkpointed
                    start(r.spec, n, fail_t)
                else:
                    resize(r, n)

        for _ in range(self.max_events):
            while pending and pending[0].arrival <= t:
                queue.append((pending.pop(0), None))
            for node in [n for n, ready in down.items() if ready <= t]:
                del down[node]
                free.append(node)
            while plan is not None and not plan.fired:
                sec, _node = plan.pending
                if sec > t:
                    break
                if plan.claim(sec):
                    fail_node(plan.fired_nodes[-1])
            admit()
            if self.health is not None:
                occupied = sum(r.ntasks for r in running)
                self.health.sample_fleet(
                    running=len(running),
                    queued=len(queue),
                    utilization=occupied / self.num_nodes,
                    down=len(down),
                    lost_work=stats["lost"],
                )
            storms_left = plan is not None and not plan.fired
            if not running and not queue and not pending and not storms_left:
                break
            horizons = []
            for r in running:
                horizons.append(
                    r.active_start
                    + cadence_horizon(r.remaining / r.ntasks, r.tau, C)
                )
            if pending:
                horizons.append(pending[0].arrival)
            if down:
                horizons.append(min(down.values()))
            if storms_left:
                horizons.append(float(plan.pending[0]))
            if not horizons:
                raise SchedulerError("deadlock: queued jobs but nothing can run")
            t = max(t, min(horizons))
            for r in [x for x in running]:
                done_at = r.active_start + cadence_horizon(
                    r.remaining / r.ntasks, r.tau, C
                )
                if done_at <= t + 1e-9:
                    settle(r)
                    r.checkpointed = r.spec.work
                    running.remove(r)
                    free.extend(r.nodes)
                    completions[r.spec.name] = t
        else:
            raise SchedulerError("event budget exhausted (livelock?)")

        return self._result(
            reconfigurable, adaptive, t, completions, latencies, stats
        )

    # -- reporting ------------------------------------------------------------

    def _spec(self, name: str) -> JobSpec:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(name)

    def _result(
        self, reconfigurable, adaptive, t, completions, latencies, stats
    ) -> FleetResult:
        makespan = max(completions.values(), default=0.0)
        responses = [
            completions[j.name] - j.arrival
            for j in self.jobs
            if j.name in completions
        ]
        useful = sum(j.work for j in self.jobs if j.name in completions)
        result = FleetResult(
            scheduling="reconfigurable" if reconfigurable else "rigid",
            cadence="adaptive" if adaptive else "fixed",
            makespan=makespan,
            utilization=(
                useful / (self.num_nodes * makespan) if makespan else 0.0
            ),
            mean_response=(
                sum(responses) / len(responses) if responses else 0.0
            ),
            lost_work=stats["lost"],
            completed=len(completions),
            checkpoints=stats["ckpts"],
            reconfigurations=stats["reconfigs"],
            restarts=stats["restarts"],
            failures=stats["failures"],
            recovery_latency_mean_s=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
        )
        self._publish(result)
        return result

    def _publish(self, r: FleetResult) -> None:
        m = self.metrics
        if m is None:
            return
        m.counter("fleet.jobs.completed").inc(r.completed)
        m.counter("fleet.failures.injected").inc(r.failures)
        m.counter("fleet.checkpoints.taken").inc(r.checkpoints)
        m.counter("fleet.reconfigurations").inc(r.reconfigurations)
        m.counter("fleet.restarts").inc(r.restarts)
        m.gauge("fleet.lost_work.node_seconds").set(r.lost_work)
        m.gauge("fleet.utilization").set(r.utilization)
        m.gauge("fleet.makespan_s").set(r.makespan)
        m.gauge("fleet.recovery.latency_mean_s").set(r.recovery_latency_mean_s)
