"""Exception hierarchy for the DRMS reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RangeError(ReproError):
    """An invalid range specification (non-monotone, empty stride, ...)."""


class SliceError(ReproError):
    """An invalid slice specification or rank mismatch."""


class DistributionError(ReproError):
    """An illegal distribution: overlapping assigned sections, assigned
    sections not contained in mapped sections, task-count mismatch, ..."""


class ArrayError(ReproError):
    """Distributed-array misuse: shape mismatch, undefined elements,
    access outside the local section."""


class SteeringTimeoutError(ArrayError):
    """A steering request was never serviced within the wait budget —
    the application has no steering point in its loop, or it exited
    before reaching one.  Carries the request ``kind``/``name``/
    ``section`` so a client steering many fields can tell which one
    wedged."""

    def __init__(self, message: str, kind: str = "", name: str = "",
                 section=None):
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.section = section


class StreamingError(ReproError):
    """Array-section streaming failure (bad partition, seek on a
    non-seekable stream, short read/write)."""


class CheckpointError(ReproError):
    """Checkpoint could not be taken or is malformed on disk."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpointed state failed integrity validation: a checksum
    mismatch, a truncated file, or a component whose size disagrees
    with the manifest."""


class RestartError(CheckpointError):
    """Restart from a checkpointed state failed (missing files, version
    mismatch, incompatible task count for SPMD checkpoints)."""


class MemoryTierError(CheckpointError):
    """The in-memory (L1) checkpoint tier cannot serve a generation: a
    replica set lost every copy of some piece, a surviving replica
    failed its checksum, or the generation was never captured."""


class WorkflowError(CheckpointError):
    """A coupled-workflow operation failed: a member never reached its
    exchange boundary, a workflow line could not be committed, or no
    workflow generation has every member byte-valid."""


class ReconfigurationError(ReproError):
    """A reconfiguration request cannot be satisfied (task count outside
    the SOQ resource range, no distribution for the new task count)."""


class CommunicationError(ReproError):
    """Message-passing failure inside the simulated machine."""


class TaskFailure(ReproError):
    """Raised inside a task that has been killed by the runtime (e.g.,
    because its node failed or a sibling task crashed)."""


class MachineError(ReproError):
    """Invalid machine configuration or node-level fault."""


class PFSError(ReproError):
    """Parallel-file-system failure: unknown file, bad offset, write to
    a read-only handle."""


class IOFaultError(PFSError):
    """An *injected* I/O fault fired (see :mod:`repro.pfs.faults`):
    a failed or torn write produced by the fault-injection harness."""


class SchedulerError(ReproError):
    """Job scheduler (JSA) error: unknown job, no feasible allocation."""
