"""Message envelopes and payload sizing for the simulated network."""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Message", "payload_nbytes", "ANY_TAG", "ANY_SOURCE"]

#: wildcard tag for receives
ANY_TAG = -1
#: wildcard source for receives
ANY_SOURCE = -1


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a payload in bytes.

    numpy arrays and raw byte strings are sized exactly; other Python
    objects are sized by their pickled length (mirroring mpi4py's
    lowercase pickle-based API).
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if payload is None:
        return 0
    try:
        return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # conservative fallback for unpicklable control objects


@dataclass
class Message:
    """One point-to-point message in flight."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int
    #: simulated time at which the message is fully available at dst
    arrival_time: float

    def __repr__(self) -> str:
        return (
            f"Message({self.src}->{self.dst} tag={self.tag} "
            f"{self.nbytes}B @{self.arrival_time:.6f}s)"
        )
