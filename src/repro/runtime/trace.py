"""Communication tracing: who talked to whom, when, how much.

Attach a :class:`CommTracer` to a :class:`~repro.runtime.comm.CommWorld`
(or pass ``trace=True`` through :func:`~repro.runtime.executor.run_spmd`
by wrapping the world after the run) to record every message with its
simulated send time.  The summary answers the debugging questions a
communication-heavy reproduction raises: per-pair traffic matrices,
hot ranks, and a compact timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.reporting.tables import Table
from repro.runtime.comm import CommWorld

__all__ = ["TraceRecord", "CommTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced message."""

    time: float
    src: int
    dst: int
    tag: int
    nbytes: int


class CommTracer:
    """Records messages by wrapping a world's ``send``.

    Use as a context manager around the communication being studied::

        world = CommWorld(4)
        with CommTracer(world) as tracer:
            ...  # run the tasks
        print(tracer.summary())
    """

    def __init__(self, world: CommWorld):
        self.world = world
        self.records: List[TraceRecord] = []
        self._orig_send = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "CommTracer":
        """Start recording (idempotent)."""
        if self._orig_send is not None:
            return self
        self._orig_send = self.world.send

        def traced_send(src, dst, tag, payload):
            self._orig_send(src, dst, tag, payload)
            from repro.runtime.message import payload_nbytes

            self.records.append(
                TraceRecord(
                    time=self.world.clocks[src].now,
                    src=src,
                    dst=dst,
                    tag=tag,
                    nbytes=payload_nbytes(payload),
                )
            )

        self.world.send = traced_send
        return self

    def detach(self) -> None:
        """Stop recording and restore the world."""
        if self._orig_send is not None:
            self.world.send = self._orig_send
            self._orig_send = None

    def __enter__(self) -> "CommTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- analysis --------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def total_messages(self) -> int:
        return len(self.records)

    def pair_matrix(self) -> Dict[Tuple[int, int], int]:
        """Bytes per (src, dst) pair."""
        out: Dict[Tuple[int, int], int] = {}
        for r in self.records:
            key = (r.src, r.dst)
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def hottest_pairs(self, k: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """The ``k`` heaviest (src, dst) pairs by bytes."""
        return sorted(self.pair_matrix().items(), key=lambda kv: -kv[1])[:k]

    def per_rank_sent(self) -> Dict[int, int]:
        """Bytes sent by each rank."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.src] = out.get(r.src, 0) + r.nbytes
        return out

    def summary(self, top: int = 5) -> str:
        """A printable traffic report."""
        t = Table(["src", "dst", "bytes"], title=(
            f"Traffic: {self.total_messages} messages, "
            f"{self.total_bytes} bytes"
        ))
        for (src, dst), nbytes in self.hottest_pairs(top):
            t.add_row(src, dst, nbytes)
        return t.render()

    def timeline(self, bins: int = 10) -> List[int]:
        """Bytes per simulated-time bin (message send times)."""
        if not self.records:
            return [0] * bins
        t_max = max(r.time for r in self.records) or 1.0
        out = [0] * bins
        for r in self.records:
            i = min(bins - 1, int(bins * r.time / t_max))
            out[i] += r.nbytes
        return out
