"""Communication tracing: who talked to whom, when, how much.

Attach a :class:`CommTracer` to a :class:`~repro.runtime.comm.CommWorld`
(or pass ``trace=True`` through :func:`~repro.runtime.executor.run_spmd`
by wrapping the world after the run) to record every message with its
simulated send time.  The summary answers the debugging questions a
communication-heavy reproduction raises: per-pair traffic matrices,
hot ranks, and a compact timeline.

The tracer is a producer for the unified observability layer: every
recorded message also increments ``comm.messages`` / ``comm.bytes`` in
the active :class:`~repro.obs.metrics.MetricsRegistry` (a no-op under
the default null tracer), so communication volume lands in the same
dump as checkpoint and PFS accounting.

Tracers stack: two tracers may attach to one world (an inner scoped
tracer inside an outer run-wide one) and detach in any order — each
detach unlinks only its own wrapper from the interception chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.reporting.tables import Table
from repro.runtime.comm import CommWorld

__all__ = ["TraceRecord", "CommTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced message."""

    time: float
    src: int
    dst: int
    tag: int
    nbytes: int


class CommTracer:
    """Records messages by wrapping a world's ``send``.

    Use as a context manager around the communication being studied::

        world = CommWorld(4)
        with CommTracer(world) as tracer:
            ...  # run the tasks
        print(tracer.summary())

    ``metrics`` routes the byte/message counters to an explicit
    registry; by default they go to the active tracer's registry
    (resolved at attach time).
    """

    def __init__(self, world: CommWorld, metrics: Optional[MetricsRegistry] = None):
        self.world = world
        self.records: List[TraceRecord] = []
        self.metrics = metrics
        self._traced_send = None
        self._orig_send = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self) -> "CommTracer":
        """Start recording (idempotent)."""
        if self._traced_send is not None:
            return self
        self._orig_send = self.world.send
        metrics = self.metrics if self.metrics is not None else get_tracer().metrics

        def traced_send(src, dst, tag, payload):
            # call through the (relinkable) chain link, not a closed-over
            # reference: an inner tracer detaching mid-stack rewrites it
            traced_send.inner(src, dst, tag, payload)
            from repro.runtime.message import payload_nbytes

            nbytes = payload_nbytes(payload)
            self.records.append(
                TraceRecord(
                    time=self.world.clocks[src].now,
                    src=src,
                    dst=dst,
                    tag=tag,
                    nbytes=nbytes,
                )
            )
            metrics.counter("comm.messages").inc()
            metrics.counter("comm.bytes").inc(nbytes)

        traced_send.inner = self._orig_send
        traced_send.tracer = self
        self._traced_send = traced_send
        self.world.send = traced_send
        return self

    def detach(self) -> None:
        """Stop recording and unlink this tracer's wrapper.

        Safe under nesting: when another tracer attached on top of this
        one, the wrapper is removed from the middle of the chain (the
        outer tracer keeps recording) instead of clobbering
        ``world.send`` with a stale function."""
        wrapper = self._traced_send
        if wrapper is None:
            return
        if self.world.send is wrapper:
            self.world.send = wrapper.inner
        else:
            cur = self.world.send
            while getattr(cur, "inner", None) is not None and cur.inner is not wrapper:
                cur = cur.inner
            if getattr(cur, "inner", None) is wrapper:
                cur.inner = wrapper.inner
            # else: send was replaced wholesale behind our back; nothing
            # of ours is installed any more, so there is nothing to undo
        self._traced_send = None
        self._orig_send = None

    def __enter__(self) -> "CommTracer":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- analysis --------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def total_messages(self) -> int:
        return len(self.records)

    def pair_matrix(self) -> Dict[Tuple[int, int], int]:
        """Bytes per (src, dst) pair."""
        out: Dict[Tuple[int, int], int] = {}
        for r in self.records:
            key = (r.src, r.dst)
            out[key] = out.get(key, 0) + r.nbytes
        return out

    def hottest_pairs(self, k: int = 5) -> List[Tuple[Tuple[int, int], int]]:
        """The ``k`` heaviest (src, dst) pairs by bytes."""
        return sorted(self.pair_matrix().items(), key=lambda kv: -kv[1])[:k]

    def per_rank_sent(self) -> Dict[int, int]:
        """Bytes sent by each rank."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.src] = out.get(r.src, 0) + r.nbytes
        return out

    def summary(self, top: int = 5) -> str:
        """A printable traffic report."""
        t = Table(["src", "dst", "bytes"], title=(
            f"Traffic: {self.total_messages} messages, "
            f"{self.total_bytes} bytes"
        ))
        for (src, dst), nbytes in self.hottest_pairs(top):
            t.add_row(src, dst, nbytes)
        return t.render()

    def timeline(self, bins: int = 10) -> List[int]:
        """Bytes per simulated-time bin over ``[t_min, t_max]``.

        When every record shares one send time (e.g. all at 0.0 under a
        fresh clock) there is no span to subdivide: the result is a
        single bin holding all traffic, rather than an arbitrary
        rescaled spread."""
        if not self.records:
            return [0] * bins
        t_min = min(r.time for r in self.records)
        t_max = max(r.time for r in self.records)
        if t_max == t_min:
            return [self.total_bytes]
        span = t_max - t_min
        out = [0] * bins
        for r in self.records:
            i = min(bins - 1, int(bins * (r.time - t_min) / span))
            out[i] += r.nbytes
        return out
