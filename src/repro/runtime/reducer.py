"""MPI-style reduction operators for the collective calls.

``comm.reduce``/``comm.allreduce`` accept any binary callable; this
module provides the standard MPI operator set with correct numpy
element-wise semantics plus the location-carrying MAXLOC/MINLOC pairs
(useful for residual tracking in the solvers).
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

__all__ = [
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
]


def SUM(a: Any, b: Any) -> Any:
    """Element-wise (or scalar) sum."""
    return np.add(a, b) if _arrayish(a, b) else a + b


def PROD(a: Any, b: Any) -> Any:
    """Element-wise (or scalar) product."""
    return np.multiply(a, b) if _arrayish(a, b) else a * b


def MAX(a: Any, b: Any) -> Any:
    """Element-wise (or scalar) maximum."""
    return np.maximum(a, b) if _arrayish(a, b) else max(a, b)


def MIN(a: Any, b: Any) -> Any:
    """Element-wise (or scalar) minimum."""
    return np.minimum(a, b) if _arrayish(a, b) else min(a, b)


def LAND(a: Any, b: Any) -> Any:
    """Logical AND."""
    return np.logical_and(a, b) if _arrayish(a, b) else bool(a) and bool(b)


def LOR(a: Any, b: Any) -> Any:
    """Logical OR."""
    return np.logical_or(a, b) if _arrayish(a, b) else bool(a) or bool(b)


def BAND(a: Any, b: Any) -> Any:
    """Bitwise AND."""
    return np.bitwise_and(a, b) if _arrayish(a, b) else a & b


def BOR(a: Any, b: Any) -> Any:
    """Bitwise OR."""
    return np.bitwise_or(a, b) if _arrayish(a, b) else a | b


def BXOR(a: Any, b: Any) -> Any:
    """Bitwise XOR."""
    return np.bitwise_xor(a, b) if _arrayish(a, b) else a ^ b


def MAXLOC(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
    """Reduce ``(value, rank)`` pairs to the maximum value and the
    lowest rank holding it (MPI MAXLOC tie-breaking)."""
    if a[0] > b[0]:
        return a
    if b[0] > a[0]:
        return b
    return a if a[1] <= b[1] else b


def MINLOC(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
    """Reduce (value, rank) pairs to the minimum value, lowest rank on ties."""
    if a[0] < b[0]:
        return a
    if b[0] < a[0]:
        return b
    return a if a[1] <= b[1] else b


def _arrayish(a: Any, b: Any) -> bool:
    return isinstance(a, np.ndarray) or isinstance(b, np.ndarray)
