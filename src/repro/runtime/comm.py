"""MPI-like communication over in-process task queues.

:class:`CommWorld` is the shared fabric for one task group (one SPMD
application run); :class:`TaskComm` is the per-rank handle task code
uses, mirroring the mpi4py surface the paper's MPL/MPI calls map to:
blocking ``send``/``recv``, ``barrier``, ``bcast``, ``scatter``,
``gather``, ``allgather``, ``alltoall``, ``reduce``, ``allreduce``.

Timing: every message charges ``latency + nbytes/bandwidth`` simulated
seconds to the sender; the receiver's clock merges with the arrival
stamp (Lamport).  Collectives are built from point-to-point sends, so
their simulated cost emerges from the same model.

Failure: killing the world (what the Resource Coordinator does when a
node dies) aborts every blocked or future communication call with
:class:`~repro.errors.TaskFailure`, unwinding task threads cleanly.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import CommunicationError, TaskFailure
from repro.runtime.clock import SimClock
from repro.runtime.machine import Machine
from repro.runtime.message import ANY_SOURCE, ANY_TAG, Message, payload_nbytes

__all__ = ["CommWorld", "TaskComm"]

#: base of the reserved tag space used by collective operations
_COLL_TAG_BASE = -(1 << 20)


class CommWorld:
    """Shared communication state for ``ntasks`` SPMD tasks."""

    def __init__(
        self,
        ntasks: int,
        machine: Optional[Machine] = None,
        copy_arrays: bool = True,
        default_timeout: float = 60.0,
    ):
        if ntasks < 1:
            raise CommunicationError("world needs at least one task")
        self.ntasks = ntasks
        self.machine = machine or Machine()
        self.copy_arrays = copy_arrays
        self.default_timeout = default_timeout
        self.clocks: List[SimClock] = [SimClock() for _ in range(ntasks)]
        self._lock = threading.Lock()
        self._cvs: List[threading.Condition] = [
            threading.Condition(self._lock) for _ in range(ntasks)
        ]
        self._queues: List[deque] = [deque() for _ in range(ntasks)]
        self._killed = False
        self._barrier_clocks = [0.0] * ntasks
        self._barrier_max = 0.0
        self._barrier = threading.Barrier(ntasks, action=self._barrier_action)
        # traffic ledger
        self.total_messages = 0
        self.total_bytes = 0
        self.bytes_sent: List[int] = [0] * ntasks

    # -- timing ----------------------------------------------------------------

    def transfer_cost(self, nbytes: int) -> float:
        """Simulated seconds to move ``nbytes`` over one link."""
        p = self.machine.params
        return p.link_latency_s + nbytes / (p.link_bandwidth_mbps * 1e6)

    def _barrier_action(self) -> None:
        self._barrier_max = max(self._barrier_clocks)

    # -- lifecycle ----------------------------------------------------------------

    def kill(self) -> None:
        """Abort all communication: blocked calls raise TaskFailure."""
        with self._lock:
            self._killed = True
            for cv in self._cvs:
                cv.notify_all()
        self._barrier.abort()

    @property
    def killed(self) -> bool:
        return self._killed

    def _check_alive(self) -> None:
        if self._killed:
            raise TaskFailure("task group has been killed")

    # -- core p2p ----------------------------------------------------------------

    def send(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Enqueue a message for ``dst``; charges the transfer to the sender's clock."""
        self._check_alive()
        if not 0 <= dst < self.ntasks:
            raise CommunicationError(f"send to unknown rank {dst}")
        if isinstance(payload, np.ndarray) and self.copy_arrays:
            payload = payload.copy()
        nbytes = payload_nbytes(payload)
        cost = self.transfer_cost(nbytes) if src != dst else 0.0
        arrival = self.clocks[src].advance(cost)
        msg = Message(src, dst, tag, payload, nbytes, arrival)
        with self._lock:
            self._queues[dst].append(msg)
            self.total_messages += 1
            self.total_bytes += nbytes
            self.bytes_sent[src] += nbytes
            self._cvs[dst].notify_all()

    def recv(
        self,
        dst: int,
        src: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive with optional source/tag filters."""
        deadline_timeout = self.default_timeout if timeout is None else timeout
        cv = self._cvs[dst]
        with self._lock:
            while True:
                if self._killed:
                    raise TaskFailure("task group has been killed")
                msg = self._match(dst, src, tag)
                if msg is not None:
                    break
                if not cv.wait(timeout=deadline_timeout):
                    raise CommunicationError(
                        f"rank {dst} recv(src={src}, tag={tag}) timed out "
                        f"after {deadline_timeout}s (deadlock?)"
                    )
        self.clocks[dst].merge(msg.arrival_time)
        return msg.payload

    def _match(self, dst: int, src: int, tag: int) -> Optional[Message]:
        q = self._queues[dst]
        for i, msg in enumerate(q):
            if (src == ANY_SOURCE or msg.src == src) and (
                tag == ANY_TAG or msg.tag == tag
            ):
                del q[i]
                return msg
        return None

    def probe(self, dst: int, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a matching pending message."""
        with self._lock:
            q = self._queues[dst]
            return any(
                (src == ANY_SOURCE or m.src == src)
                and (tag == ANY_TAG or m.tag == tag)
                for m in q
            )

    # -- barrier ----------------------------------------------------------------

    def barrier(self, rank: int) -> None:
        """Synchronize all tasks; clocks merge to the latest arrival."""
        self._check_alive()
        self._barrier_clocks[rank] = self.clocks[rank].now
        try:
            self._barrier.wait(timeout=self.default_timeout)
        except threading.BrokenBarrierError:
            if self._killed:
                raise TaskFailure("task group has been killed") from None
            raise CommunicationError("barrier broken (timeout or abort)") from None
        # everyone leaves at the same simulated instant + one latency
        self.clocks[rank].merge(
            self._barrier_max + self.machine.params.link_latency_s
        )

    def max_clock(self) -> float:
        return max(c.now for c in self.clocks)


class Request:
    """Handle for a non-blocking operation (mpi4py's ``Request``).

    Sends complete immediately (the fabric buffers); receives complete
    when a matching message arrives.  ``wait`` returns the received
    payload (``None`` for sends); ``test`` polls without blocking.
    """

    def __init__(self, comm: "TaskComm", kind: str, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        self._comm = comm
        self._kind = kind
        self._source = source
        self._tag = tag
        self._done = kind == "send"
        self._payload = None

    def test(self):
        """``(completed, payload)`` without blocking."""
        if self._done:
            return True, self._payload
        if self._comm.probe(self._source, self._tag):
            self._payload = self._comm.recv(self._source, self._tag)
            self._done = True
        return self._done, self._payload

    def wait(self, timeout=None):
        """Block until completion; returns the payload (None for sends)."""
        if not self._done:
            self._payload = self._comm.recv(self._source, self._tag, timeout=timeout)
            self._done = True
        return self._payload

    @property
    def completed(self) -> bool:
        return self._done


class TaskComm:
    """The per-rank communicator handed to SPMD task code."""

    def __init__(self, world: CommWorld, rank: int):
        self.world = world
        self.rank = int(rank)
        self._coll_seq = 0

    # -- identity -------------------------------------------------------------

    @property
    def size(self) -> int:
        return self.world.ntasks

    @property
    def clock(self) -> SimClock:
        return self.world.clocks[self.rank]

    def compute(self, seconds: float) -> None:
        """Charge local compute time to this task's simulated clock."""
        self.clock.advance(seconds)

    # -- point-to-point ----------------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self.world.send(self.rank, dest, tag, payload)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the payload."""
        return self.world.recv(self.rank, source, tag, timeout=timeout)

    def sendrecv(
        self, payload: Any, dest: int, source: int, tag: int = 0
    ) -> Any:
        """Exchange with partners (send first is safe: sends buffer)."""
        self.send(payload, dest, tag)
        return self.recv(source, tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send: buffered by the fabric, completes at once."""
        self.world.send(self.rank, dest, tag, payload)
        return Request(self, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive: completes when a match arrives."""
        return Request(self, "recv", source=source, tag=tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self.world.probe(self.rank, source, tag)

    # -- collectives ---------------------------------------------------------------

    def _next_coll_tag(self) -> int:
        # SPMD code calls collectives in the same order on every rank,
        # so a per-rank sequence number yields matching tags.
        self._coll_seq += 1
        return _COLL_TAG_BASE - self._coll_seq

    def barrier(self) -> None:
        self.world.barrier(self.rank)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to every task."""
        tag = self._next_coll_tag()
        if self.rank == root:
            for dst in range(self.size):
                if dst != root:
                    self.world.send(self.rank, dst, tag, obj)
            return obj
        return self.world.recv(self.rank, root, tag)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per task to ``root`` (None elsewhere)."""
        tag = self._next_coll_tag()
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            for src in range(self.size):
                if src != root:
                    out[src] = self.world.recv(self.rank, src, tag)
            return out
        self.world.send(self.rank, root, tag, obj)
        return None

    def scatter(self, objs: Optional[Sequence[Any]] = None, root: int = 0) -> Any:
        """Scatter one object per task from ``root``."""
        tag = self._next_coll_tag()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicationError(
                    "scatter root needs a sequence of world-size objects"
                )
            for dst in range(self.size):
                if dst != root:
                    self.world.send(self.rank, dst, tag, objs[dst])
            return objs[root]
        return self.world.recv(self.rank, root, tag)

    def allgather(self, obj: Any) -> List[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalized all-to-all exchange of one object per peer."""
        if len(objs) != self.size:
            raise CommunicationError("alltoall needs world-size objects")
        tag = self._next_coll_tag()
        for dst in range(self.size):
            if dst != self.rank:
                self.world.send(self.rank, dst, tag, objs[dst])
        out: List[Any] = [None] * self.size
        out[self.rank] = objs[self.rank]
        for src in range(self.size):
            if src != self.rank:
                out[src] = self.world.recv(self.rank, src, tag)
        return out

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any] = None, root: int = 0
    ) -> Any:
        """Reduce with a binary ``op`` (default element-wise sum) at ``root``."""
        if op is None:
            op = _add
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        return self.bcast(self.reduce(obj, op=op, root=0), root=0)

    def __repr__(self) -> str:
        return f"TaskComm(rank={self.rank}/{self.size})"


def _add(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray):
        return a + b
    return a + b
