"""Per-task simulated clocks.

Each task carries a :class:`SimClock` measuring simulated seconds.
Compute and I/O charge time with :meth:`SimClock.advance`; message
passing merges clocks Lamport-style (a receiver's clock becomes at least
the message's arrival stamp), so globally synchronizing operations
(barriers, blocking checkpoints) end with every task at the same
simulated time — exactly the "blocking checkpoint" timing discipline the
paper measures.
"""

from __future__ import annotations

__all__ = ["SimClock"]


class SimClock:
    """A monotone simulated-seconds counter for one task."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Charge ``dt`` simulated seconds (must be >= 0); returns the
        new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self._now += dt
        return self._now

    def merge(self, other_time: float) -> float:
        """Lamport merge: move forward to ``other_time`` if it is later."""
        if other_time > self._now:
            self._now = float(other_time)
        return self._now

    def reset(self, t: float = 0.0) -> None:
        self._now = float(t)

    def __repr__(self) -> str:
        return f"SimClock({self._now:.6f}s)"
