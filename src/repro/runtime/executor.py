"""The SPMD execution engine: run one function on ``ntasks`` tasks.

``run_spmd(fn, ntasks)`` spawns one thread per task, hands each a
:class:`~repro.runtime.comm.TaskComm`, and collects return values.  If
any task raises, the world is killed so sibling tasks unwind from
blocked communication instead of hanging, and the original exception is
re-raised in the caller — the behaviour of a parallel job whose task
crash takes the whole application down (paper Section 1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import CommunicationError, TaskFailure
from repro.runtime.comm import CommWorld, TaskComm
from repro.runtime.machine import Machine

__all__ = ["SPMDResult", "run_spmd"]


@dataclass
class SPMDResult:
    """Outcome of one SPMD run."""

    returns: List[Any]
    #: final simulated clock of every task, seconds
    clocks: List[float]
    world: CommWorld
    placement: Dict[int, int] = field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        """Simulated wall time of the run (max over tasks)."""
        return max(self.clocks) if self.clocks else 0.0


def run_spmd(
    fn: Callable[..., Any],
    ntasks: int,
    machine: Optional[Machine] = None,
    args: Sequence[Any] = (),
    kwargs: Optional[dict] = None,
    nodes: Optional[Sequence[int]] = None,
    timeout: float = 120.0,
    comm_timeout: float = 60.0,
    make_context: Optional[Callable[[TaskComm], Any]] = None,
) -> SPMDResult:
    """Execute ``fn(ctx, *args, **kwargs)`` as an SPMD program.

    ``ctx`` is the task's :class:`TaskComm` unless ``make_context`` wraps
    it (the DRMS layer passes a richer task context).  Tasks are placed
    one-to-one on machine nodes; the placement is recorded so the I/O
    cost model can see compute/server colocation.
    """
    kwargs = kwargs or {}
    machine = machine or Machine()
    machine.clear_tasks()
    placement = machine.place_tasks(ntasks, nodes=nodes)
    world = CommWorld(ntasks, machine=machine, default_timeout=comm_timeout)
    world.placement = placement  # rank -> node id, visible to task code
    returns: List[Any] = [None] * ntasks
    errors: List[Optional[BaseException]] = [None] * ntasks

    def body(rank: int) -> None:
        comm = TaskComm(world, rank)
        ctx = make_context(comm) if make_context else comm
        try:
            returns[rank] = fn(ctx, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must fan out any crash
            errors[rank] = exc
            world.kill()

    threads = [
        threading.Thread(target=body, args=(rank,), name=f"spmd-task-{rank}")
        for rank in range(ntasks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    hung = [t.name for t in threads if t.is_alive()]
    if hung:
        world.kill()
        for t in threads:
            t.join(timeout=5.0)
        raise CommunicationError(f"SPMD tasks did not finish: {hung}")

    # Prefer reporting a primary failure over the TaskFailure echoes the
    # kill produced in sibling tasks.
    primary = next(
        (e for e in errors if e is not None and not isinstance(e, TaskFailure)),
        None,
    )
    if primary is not None:
        raise primary
    secondary = next((e for e in errors if e is not None), None)
    if secondary is not None:
        raise secondary

    result = SPMDResult(
        returns=returns,
        clocks=[c.now for c in world.clocks],
        world=world,
        placement=placement,
    )
    machine.clear_tasks()
    return result
