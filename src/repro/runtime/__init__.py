"""Simulated message-passing machine: the substrate under DRMS.

The paper ran on a 16-node IBM RS/6000 SP with MPL message passing.
Here each task is a Python thread; :class:`~repro.runtime.comm.TaskComm`
gives every task an MPI-like interface (blocking send/recv plus the
collectives DRMS needs), and per-task simulated clocks advance by a
latency/bandwidth cost model so experiments report 1997-scale times
deterministically regardless of host speed.
"""

from repro.runtime.clock import SimClock
from repro.runtime.machine import Machine, MachineParams, Node
from repro.runtime.message import Message
from repro.runtime.comm import CommWorld, TaskComm
from repro.runtime.executor import run_spmd, SPMDResult
from repro.runtime.trace import CommTracer, TraceRecord

__all__ = [
    "SimClock",
    "Machine",
    "MachineParams",
    "Node",
    "Message",
    "CommWorld",
    "TaskComm",
    "run_spmd",
    "SPMDResult",
    "CommTracer",
    "TraceRecord",
]
