"""The simulated parallel machine.

Models the paper's testbed: an IBM RS/6000 SP with 16 "thin nodes"
(model 390, 67 MHz, 128 MB memory), a multistage switch interconnect,
and PIOFS servers co-resident on every node.  Nodes can be failed and
repaired, which drives the Section 4 failure/recovery experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import MachineError

__all__ = ["MachineParams", "Node", "Machine"]


@dataclass(frozen=True)
class MachineParams:
    """Hardware constants of the simulated machine.

    Defaults model the paper's SP: per-link MPL bandwidth of ~35 MB/s
    and ~40 microseconds point-to-point latency are representative of
    the SP switch with MPL in 1995-97; memory per node is 128 MB.
    """

    num_nodes: int = 16
    mem_mb_per_node: float = 128.0
    cpu_mhz: float = 67.0
    link_bandwidth_mbps: float = 35.0
    link_latency_s: float = 40e-6
    #: aggregate bisection cap as a multiple of one link (switch fabric)
    bisection_links: float = 8.0
    #: number of failure domains (SP frames): nodes sharing a frame share
    #: power and switch boards, so correlated failures strike within a
    #: domain.  Replica placement avoids the owner's domain.
    failure_domains: int = 4
    #: node-local memory copy rate for in-memory checkpoint capture
    #: (MB/s); far above the link and PFS rates, as on real hardware
    mem_copy_mbps: float = 400.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise MachineError("machine needs at least one node")
        if self.mem_mb_per_node <= 0 or self.link_bandwidth_mbps <= 0:
            raise MachineError("machine parameters must be positive")
        if self.failure_domains < 1:
            raise MachineError("machine needs at least one failure domain")
        if self.mem_copy_mbps <= 0:
            raise MachineError("machine parameters must be positive")


@dataclass
class Node:
    """One processing element (the paper uses processor/PE/node
    interchangeably)."""

    node_id: int
    mem_mb: float
    up: bool = True
    #: task ranks currently placed on this node
    tasks: List[int] = field(default_factory=list)
    #: bumped on every repair: a repaired node is a *new* machine whose
    #: memory is empty, so volatile tiers must not trust state recorded
    #: against an earlier incarnation (see L1Store)
    incarnation: int = 0

    @property
    def busy(self) -> bool:
        """True when application tasks share this node (relevant for
        compute/PIOFS-server interference)."""
        return bool(self.tasks)


class Machine:
    """A collection of nodes plus placement and failure state."""

    def __init__(self, params: Optional[MachineParams] = None):
        self.params = params or MachineParams()
        self.nodes: List[Node] = [
            Node(i, self.params.mem_mb_per_node)
            for i in range(self.params.num_nodes)
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def up_nodes(self) -> List[int]:
        """Ids of nodes currently available for task execution."""
        return [n.node_id for n in self.nodes if n.up]

    def node(self, node_id: int) -> Node:
        """The Node object for ``node_id``."""
        if not 0 <= node_id < len(self.nodes):
            raise MachineError(f"no node {node_id}")
        return self.nodes[node_id]

    # -- failure domains -----------------------------------------------------

    @property
    def num_domains(self) -> int:
        """Number of distinct failure domains (frames) actually present."""
        return min(self.params.failure_domains, self.num_nodes)

    def domain_of(self, node_id: int) -> int:
        """The failure domain (frame) a node belongs to.  Nodes are
        assigned in contiguous blocks, matching the SP's physical frame
        packing (nodes 0..3 in frame 0, 4..7 in frame 1, ...)."""
        self.node(node_id)  # bounds check
        frame = -(-self.num_nodes // self.num_domains)  # ceil division
        return node_id // frame

    def domain_nodes(self, domain: int) -> List[int]:
        """Ids of all nodes in ``domain`` (up or down)."""
        return [
            n.node_id for n in self.nodes if self.domain_of(n.node_id) == domain
        ]

    def up_nodes_outside_domain(self, domain: int) -> List[int]:
        """Up nodes whose failure domain differs from ``domain`` — the
        candidate pool for partner-replica placement."""
        return [
            n.node_id
            for n in self.nodes
            if n.up and self.domain_of(n.node_id) != domain
        ]

    # -- placement ----------------------------------------------------------

    def place_tasks(
        self, ntasks: int, nodes: Optional[Sequence[int]] = None
    ) -> Dict[int, int]:
        """Place ``ntasks`` ranks one-to-one onto nodes (the paper's
        mapping); returns ``{rank: node_id}``.  Uses the first ``ntasks``
        up nodes unless ``nodes`` is given."""
        if nodes is None:
            avail = self.up_nodes()
            if len(avail) < ntasks:
                raise MachineError(
                    f"need {ntasks} up nodes, only {len(avail)} available"
                )
            nodes = avail[:ntasks]
        else:
            nodes = list(nodes)
            if len(nodes) != ntasks:
                raise MachineError(
                    f"{ntasks} tasks but {len(nodes)} placement nodes"
                )
            for nd in nodes:
                if not self.node(nd).up:
                    raise MachineError(f"cannot place task on failed node {nd}")
        placement: Dict[int, int] = {}
        for rank, nd in enumerate(nodes):
            self.node(nd).tasks.append(rank)
            placement[rank] = nd
        return placement

    def clear_tasks(self) -> None:
        for n in self.nodes:
            n.tasks.clear()

    def busy_fraction(self) -> float:
        """Fraction of nodes running application tasks — the paper's
        compute/file-server interference driver."""
        if not self.nodes:
            return 0.0
        return sum(1 for n in self.nodes if n.busy) / len(self.nodes)

    # -- failure ---------------------------------------------------------------

    def fail_node(self, node_id: int) -> None:
        """Mark a node failed (the paper's basic failure event)."""
        self.node(node_id).up = False

    def repair_node(self, node_id: int) -> None:
        """Bring a failed node back up under a new incarnation — its
        memory was wiped, so anything stored under the old epoch is
        stale (the L1 store refuses it; see DESIGN.md section 14)."""
        node = self.node(node_id)
        if not node.up:
            node.incarnation += 1
        node.up = True

    def __repr__(self) -> str:
        up = len(self.up_nodes())
        return f"Machine({up}/{self.num_nodes} nodes up)"
