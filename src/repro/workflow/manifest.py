"""The v1 workflow manifest: one record naming a consistent line.

A workflow checkpoint with base ``W`` and generation ``g`` consists of
the member checkpoints themselves (ordinary v3 DRMS states, one per
member under its own prefix) plus one workflow manifest
``W.workflow.NNNNNN.manifest`` recording, for every member, the exact
prefix + task count + iteration captured on the line.  The manifest is
committed **two-phase** exactly like a v3 member manifest (staged to
``.tmp``, read back, renamed) and written only after *every* member
checkpoint of the line succeeded — so its presence marks a complete,
mutually consistent set, and a crash mid-line leaves the previous
committed line untouched.

Recovery inverts this: :func:`select_workflow_restart_state` walks the
committed workflow generations newest-to-oldest and picks the first
whose **every** member state is byte-valid — a torn set (one member's
generation lost or corrupt) is rejected *as a unit*, never mixed with
states from another line.  Member validation is tier-aware: a member
whose L1 memory replicas still hold and verify the generation is served
from memory, the rest from the PFS.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.checkpoint.validate import validate_checkpoint
from repro.errors import CheckpointError, CheckpointIntegrityError, WorkflowError
from repro.obs import get_tracer
from repro.obs.flight import GLOBAL_NODE, get_flight
from repro.pfs.piofs import PIOFS

__all__ = [
    "WORKFLOW_VERSION",
    "WorkflowDecision",
    "WorkflowValidation",
    "check_member_name",
    "newest_consistent_generations",
    "read_workflow_manifest",
    "select_workflow_restart_state",
    "validate_workflow_line",
    "workflow_generations",
    "workflow_line_prefix",
    "workflow_manifest_name",
    "write_workflow_manifest",
]

WORKFLOW_VERSION = 1

#: member (and MPMD component) names are path segments of checkpoint
#: prefixes; the separator is ".", so a name containing one would alias
#: another member's namespace, and a six-digit name would alias a
#: rotation generation of the group base
_MEMBER_NAME_RE = re.compile(r"^[A-Za-z0-9_\-]+$")
_GEN_LIKE_RE = re.compile(r"^\d{6}$")
_RESERVED_NAMES = frozenset(
    {"workflow", "mpmd", "manifest", "segment", "array", "task"}
)

_WF_MANIFEST_RE = re.compile(r"\.workflow\.(?P<gen>\d{6})\.manifest$")
_WF_ANY_RE = re.compile(r"\.workflow\.(?P<gen>\d{6})(\..*)?$")
_MEMBER_GEN_RE = re.compile(r"\.(?P<gen>\d{6})(\..*)?$")


def check_member_name(name: str, taken: Mapping[str, Any] = ()) -> str:
    """Validate a workflow-member / MPMD-component name.

    The name becomes a dotted prefix segment, so anything that would
    alias another namespace is rejected: dots (``a.b`` collides with
    member ``a``'s files), six-digit names (collide with rotation
    generations), reserved file-kind words, and duplicates."""
    if not _MEMBER_NAME_RE.match(name):
        raise CheckpointError(
            f"invalid member name {name!r}: use letters, digits, '_' or "
            "'-' only (dots would alias another member's checkpoint "
            "namespace)"
        )
    if _GEN_LIKE_RE.match(name):
        raise CheckpointError(
            f"invalid member name {name!r}: a six-digit name aliases a "
            "rotation generation of the group prefix"
        )
    if name in _RESERVED_NAMES:
        raise CheckpointError(
            f"invalid member name {name!r}: reserved checkpoint file kind"
        )
    if name in taken:
        raise CheckpointError(f"duplicate member name {name!r}")
    return name


# -- names --------------------------------------------------------------------


def workflow_line_prefix(base: str, generation: int) -> str:
    """The dotted prefix naming workflow generation ``generation``."""
    return f"{base}.workflow.{generation:06d}"


def workflow_manifest_name(base: str, generation: int) -> str:
    """Workflow-manifest file name for one generation."""
    return workflow_line_prefix(base, generation) + ".manifest"


# -- manifest I/O -------------------------------------------------------------


def write_workflow_manifest(
    pfs: PIOFS, base: str, generation: int, manifest: Dict[str, Any]
) -> str:
    """Commit a workflow manifest atomically (stamps the workflow
    format version); returns the manifest file name.

    Same two-phase protocol as the v3 member manifests: stage to
    ``.manifest.tmp``, read back byte-for-byte, rename onto the final
    name.  A crash anywhere before the rename leaves no workflow
    manifest, so the half-committed line is invisible to
    :func:`workflow_generations`."""
    manifest = dict(manifest)
    manifest["workflow_version"] = WORKFLOW_VERSION
    manifest["base"] = base
    manifest["generation"] = generation
    data = json.dumps(manifest, sort_keys=True).encode()
    name = workflow_manifest_name(base, generation)
    tmp = name + ".tmp"
    with get_tracer().span("workflow_manifest_commit", file=name, nbytes=len(data)):
        pfs.create(tmp, virtual=False)
        pfs.write_at(tmp, 0, data)
        back = pfs.read_at(tmp, 0, pfs.file_size(tmp))
        if back != data:
            raise CheckpointIntegrityError(
                f"workflow manifest {name!r} failed write validation: "
                f"staged {len(back)} bytes, expected {len(data)} (torn write?)"
            )
        pfs.rename(tmp, name)
    return name


def read_workflow_manifest(pfs: PIOFS, base: str, generation: int) -> Dict[str, Any]:
    """Read and version-check one workflow manifest."""
    name = workflow_manifest_name(base, generation)
    if not pfs.exists(name):
        raise WorkflowError(f"no workflow manifest {name!r}")
    raw = pfs.read_at(name, 0, pfs.file_size(name))
    try:
        manifest = json.loads(raw.decode())
    except Exception as exc:
        raise WorkflowError(f"corrupt workflow manifest {name!r}: {exc}") from exc
    version = manifest.get("workflow_version")
    if version != WORKFLOW_VERSION:
        raise WorkflowError(
            f"workflow manifest {name!r} has version {version}; this "
            f"library reads version {WORKFLOW_VERSION}"
        )
    return manifest


def workflow_generations(pfs: PIOFS, base: str) -> List[int]:
    """Committed workflow generations under ``base``, oldest first.
    Only readable manifests count (the manifest is written last, so a
    half-committed line is invisible here)."""
    out = []
    head = f"{base}.workflow."
    for name in pfs.listdir(head):
        m = _WF_MANIFEST_RE.search(name)
        if m is None or name != workflow_manifest_name(base, int(m.group("gen"))):
            continue
        try:
            read_workflow_manifest(pfs, base, int(m.group("gen")))
        except WorkflowError:
            continue
        out.append(int(m.group("gen")))
    return sorted(out)


def next_workflow_generation(
    pfs: PIOFS, base: str, member_bases: Mapping[str, str] = ()
) -> int:
    """A generation number strictly newer than every existing workflow
    artifact — including incomplete lines (stale ``.tmp`` manifests)
    and every member's own numbered states, whose numbers must not be
    reused even after a manifest is lost."""
    newest = 0
    for name in pfs.listdir(f"{base}.workflow."):
        m = _WF_ANY_RE.search(name)
        if m:
            newest = max(newest, int(m.group("gen")))
    for mbase in dict(member_bases).values():
        for name in pfs.listdir(mbase + "."):
            m = _MEMBER_GEN_RE.match(name[len(mbase):])
            if m:
                newest = max(newest, int(m.group("gen")))
    return newest + 1


# -- validation ---------------------------------------------------------------


@dataclass
class WorkflowValidation:
    """Outcome of auditing one workflow line."""

    generation: int
    #: member -> serving tier ("l1" or "l2") for every valid member
    member_tiers: Dict[str, str] = field(default_factory=dict)
    #: "member: detail" for every member that failed the audit
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True only when *every* member verified — a single torn
        member rejects the whole line."""
        return not self.errors


def _validate_member(pfs: PIOFS, prefix: str, l1=None) -> Tuple[Optional[str], List[str]]:
    """Audit one member state, memory tier first.  Returns the serving
    tier (``"l1"``/``"l2"``) and the accumulated errors when neither
    tier can serve."""
    errors: List[str] = []
    if l1 is not None and l1.has(prefix):
        l1.sync_with_machine()
        report = l1.validate_generation(prefix)
        if report.ok:
            return "l1", []
        errors.extend(f"l1 {prefix}: {e}" for e in report.errors)
    report = validate_checkpoint(pfs, prefix)
    if report.ok:
        return "l2", []
    errors.extend(f"l2 {prefix}: {e}" for e in report.errors)
    return None, errors


def validate_workflow_line(
    pfs: PIOFS,
    manifest: Mapping[str, Any],
    l1_stores: Optional[Mapping[str, Any]] = None,
) -> WorkflowValidation:
    """Audit every member state named by a workflow manifest.  The line
    is ``ok`` only when all members verify; ``member_tiers`` records
    which tier would serve each member (L1 memory replicas preferred,
    per member — a mixed-tier restart is normal)."""
    l1_stores = dict(l1_stores or {})
    result = WorkflowValidation(generation=int(manifest["generation"]))
    for member, entry in sorted(manifest.get("members", {}).items()):
        tier, errors = _validate_member(
            pfs, entry["prefix"], l1=l1_stores.get(member)
        )
        if tier is None:
            result.errors.append(f"{member}: " + "; ".join(errors[:2]))
        else:
            result.member_tiers[member] = tier
    if not manifest.get("members"):
        result.errors.append("workflow manifest names no members")
    return result


# -- recovery walk ------------------------------------------------------------


@dataclass
class WorkflowDecision:
    """Outcome of a workflow recovery walk under ``base``."""

    base: str
    #: the chosen generation, or None when no line verified
    generation: Optional[int]
    #: the chosen line's manifest (None when nothing verified)
    manifest: Optional[Dict[str, Any]] = None
    #: member -> serving tier for the chosen line
    member_tiers: Dict[str, str] = field(default_factory=dict)
    #: (generation, errors) for every newer line rejected as a unit
    rejected: List[Tuple[int, List[str]]] = field(default_factory=list)

    @property
    def fell_back(self) -> bool:
        """True when the chosen line is not the newest committed one."""
        return self.generation is not None and bool(self.rejected)


def select_workflow_restart_state(
    pfs: PIOFS,
    base: str,
    l1_stores: Optional[Mapping[str, Any]] = None,
    events=None,
    clock: float = 0.0,
) -> WorkflowDecision:
    """Pick the newest workflow generation whose every member state is
    byte-valid, walking newest-to-oldest and rejecting torn lines *as a
    unit* — one lost or corrupt member never costs less than the whole
    line, and never mixes with a state from another line.

    ``l1_stores`` maps member names to their
    :class:`~repro.mlck.store.L1Store` (or None), upgrading per-member
    validation to the tier-aware policy: members whose memory replicas
    verify are served from L1, the rest from the PFS."""
    decision = WorkflowDecision(base=base, generation=None)
    obs = get_tracer()
    fr = get_flight()
    with obs.span("workflow_recovery_walk", base=base) as sp:
        lines = list(reversed(workflow_generations(pfs, base)))
        for gen in lines:
            manifest = read_workflow_manifest(pfs, base, gen)
            report = validate_workflow_line(pfs, manifest, l1_stores)
            if report.ok:
                decision.generation = gen
                decision.manifest = manifest
                decision.member_tiers = dict(report.member_tiers)
                obs.metrics.counter("workflow.lines.verified").inc()
                for tier in report.member_tiers.values():
                    obs.metrics.counter(f"workflow.restore.{tier}").inc()
                if fr.enabled:
                    fr.record(
                        "workflow_line_verified", node=GLOBAL_NODE, time=clock,
                        base=base, generation=gen,
                        tiers=dict(report.member_tiers),
                    )
                if events is not None:
                    events.emit(
                        clock, "workflow_line_verified",
                        base=base, generation=gen,
                        tiers=dict(report.member_tiers),
                    )
                if decision.rejected:
                    obs.mark(
                        "workflow_restart_fallback", chosen=gen,
                        skipped=[g for g, _ in decision.rejected],
                    )
                    obs.metrics.counter("workflow.lines.fallback").inc()
                    if events is not None:
                        events.emit(
                            clock, "workflow_restart_fallback",
                            base=base, generation=gen,
                            skipped=[g for g, _ in decision.rejected],
                        )
                break
            decision.rejected.append((gen, list(report.errors)))
            obs.metrics.counter("workflow.lines.rejected").inc()
            if fr.enabled:
                fr.record(
                    "workflow_line_rejected", node=GLOBAL_NODE, time=clock,
                    base=base, generation=gen, errors=len(report.errors),
                )
            if events is not None:
                events.emit(
                    clock, "workflow_line_rejected",
                    base=base, generation=gen, errors=list(report.errors),
                )
        sp.set(
            lines=len(lines),
            rejected=len(decision.rejected),
            chosen=decision.generation,
        )
    return decision


# -- joint rotation walk (MPMD components without workflow manifests) ---------


def newest_consistent_generations(
    pfs: PIOFS,
    bases: Mapping[str, str],
    l1_stores: Optional[Mapping[str, Any]] = None,
) -> Tuple[Optional[Dict[str, str]], List[Tuple[int, List[str]]]]:
    """The newest rotation generation number ``g`` at which *every*
    member has a byte-valid state ``<base>.NNNNNN`` — the consistency
    line of a component group that rotates checkpoints without workflow
    manifests (:meth:`~repro.drms.mpmd.MPMDApplication.restart`).

    Walks the candidate numbers newest-to-oldest; a number where any
    member is missing, lost, or corrupt is rejected **as a unit**, so
    components never silently restart from mixed logical generations.
    Returns ``({member: prefix}, rejected)`` with ``rejected`` the list
    of ``(generation, errors)`` skipped, or ``(None, rejected)`` when no
    number is consistent."""
    from repro.checkpoint.rotation import _GEN_RE, generations

    l1_stores = dict(l1_stores or {})
    candidates: set = set()
    for mbase in bases.values():
        for prefix in generations(pfs, mbase):
            candidates.add(int(_GEN_RE.match(prefix).group("gen")))
    rejected: List[Tuple[int, List[str]]] = []
    for g in sorted(candidates, reverse=True):
        resolved: Dict[str, str] = {}
        errors: List[str] = []
        for member, mbase in sorted(bases.items()):
            prefix = f"{mbase}.{g:06d}"
            tier, errs = _validate_member(
                pfs, prefix, l1=l1_stores.get(member)
            )
            if tier is None:
                errors.append(f"{member}: " + "; ".join(errs[:2]))
            else:
                resolved[member] = prefix
        if not errors:
            return resolved, rejected
        rejected.append((g, errors))
    return None, rejected
