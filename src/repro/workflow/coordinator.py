"""The workflow coordinator: N coupled applications, one checkpoint line.

:class:`WorkflowCoordinator` owns named member
:class:`~repro.drms.app.DRMSApplication`\\ s plus the coupling topology
(who sends which array to whom) and runs them *concurrently* on one
simulated machine.  Members align at **exchange boundaries** — each
member's SPMD tasks call
:meth:`~repro.drms.context.DRMSContext.workflow_exchange` at the same
logical point of their outer loops — where the coordinator:

1. services every member's steering queue (the ensemble-wide analogue
   of a consistent steering point),
2. performs the coupling transfers (``dst <- src`` across independent
   distributions, :func:`~repro.drms.steering.app_transfer`),
3. makes **one** cadence decision for the whole ensemble (a shared
   :class:`~repro.policy.engine.CheckpointPolicy`, evaluated once,
   rank-0 style, and serviced by all members), and
4. on a positive decision, has every member checkpoint *at this
   boundary* and — only after every member state committed — writes the
   v1 workflow manifest naming the set as one workflow generation.

Because all members are quiescent inside the same exchange (their SOP
crossing anchors are noted first, exactly like ``reconfig_checkpoint``),
the per-member states are mutually consistent by construction: every
coupling transfer either happened before the line for all members or
after it for all members.

Restart is the mirror image: :meth:`WorkflowCoordinator.restart_workflow`
asks :func:`~repro.workflow.manifest.select_workflow_restart_state` for
the newest fully-valid line (torn sets rejected as a unit) and
relaunches every member from its recorded prefix — each on any task
count its SOQ allows, some served from L1 memory replicas and others
from the PFS.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.drms.app import DRMSApplication, RunReport
from repro.drms.steering import app_transfer
from repro.errors import ArrayError, ReconfigurationError, WorkflowError
from repro.obs import get_tracer
from repro.obs.flight import GLOBAL_NODE, get_flight
from repro.pfs.piofs import PIOFS
from repro.runtime.machine import Machine
from repro.workflow.manifest import (
    WorkflowDecision,
    check_member_name,
    next_workflow_generation,
    read_workflow_manifest,
    select_workflow_restart_state,
    workflow_generations,
    write_workflow_manifest,
)

__all__ = ["Coupling", "WorkflowCoordinator", "WorkflowLine", "WorkflowRunReport"]


@dataclass(frozen=True)
class Coupling:
    """One directed edge of the coupling topology: at every exchange,
    ``dst_member.dst_array <- src_member.src_array``."""

    src_member: str
    src_array: str
    dst_member: str
    dst_array: str


@dataclass
class WorkflowLine:
    """One committed workflow generation."""

    generation: int
    #: member -> {"prefix", "ntasks", "iteration", "tier", "seconds"}
    members: Dict[str, Dict[str, Any]]
    #: simulated clock of the line (max over member arrival clocks)
    clock: float = 0.0

    @property
    def seconds(self) -> float:
        """Ensemble checkpoint time for the line: the slowest member
        (members write concurrently behind the common boundary)."""
        return max((m["seconds"] for m in self.members.values()), default=0.0)

    @property
    def serial_seconds(self) -> float:
        """Sum of member checkpoint times — what the same states would
        cost checkpointed independently, one after another."""
        return sum(m["seconds"] for m in self.members.values())


@dataclass
class WorkflowRunReport:
    """Outcome of one ensemble run."""

    members: Dict[str, RunReport] = field(default_factory=dict)
    #: workflow lines committed during this run, oldest first
    lines: List[WorkflowLine] = field(default_factory=list)
    #: set by restart_workflow: the recovery walk that chose the line
    decision: Optional[WorkflowDecision] = None

    @property
    def sim_elapsed(self) -> float:
        """Ensemble wall time: the slowest member."""
        return max((r.sim_elapsed for r in self.members.values()), default=0.0)

    @property
    def checkpoint_seconds(self) -> float:
        return sum(r.checkpoint_seconds for r in self.members.values())


class _WorkflowHub:
    """Rank-0 rendezvous of one ensemble run.

    Each member's rank 0 enters :meth:`exchange` (inside its own
    ``_collective``, so the member's other tasks are parked at a comm
    barrier); a :class:`threading.Barrier` across the members runs the
    coordinator's exchange action exactly once, then releases everyone
    with the shared outcome.  A second barrier plays the same trick for
    the two-phase line commit: the workflow manifest is written only
    after *every* member has reported its checkpoint complete."""

    def __init__(self, coordinator: "WorkflowCoordinator", members: Sequence[str]):
        self._coord = coordinator
        self._timeout = coordinator.exchange_timeout
        self._lock = threading.Lock()
        self._arrivals: Dict[str, Dict[str, Any]] = {}
        self._commits: Dict[str, Dict[str, Any]] = {}
        self._outcome: Optional[Dict[str, Any]] = None
        self._line: Optional[WorkflowLine] = None
        self._error: Optional[BaseException] = None
        parties = len(members)
        self._exchange_barrier = threading.Barrier(parties, action=self._run_exchange)
        self._commit_barrier = threading.Barrier(parties, action=self._run_commit)

    # -- barrier actions (run exactly once, all members parked) -------------

    def _run_exchange(self) -> None:
        try:
            self._outcome = self._coord._exchange_action(self._arrivals)
            self._arrivals = {}
        except BaseException as exc:  # noqa: BLE001 - relayed to every member
            self._error = exc
            self._arrivals = {}

    def _run_commit(self) -> None:
        try:
            self._line = self._coord._commit_action(self._outcome, self._commits)
            self._commits = {}
        except BaseException as exc:  # noqa: BLE001 - relayed to every member
            self._error = exc
            self._commits = {}

    def _wait(self, barrier: threading.Barrier, member: str, phase: str) -> None:
        try:
            barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise WorkflowError(
                f"workflow {phase} broken while member {member!r} waited: "
                "a peer crashed, exited early, or never reached its "
                "exchange boundary"
            ) from None
        if self._error is not None:
            raise WorkflowError(
                f"workflow {phase} failed: {self._error}"
            ) from self._error

    # -- member side (each member's rank 0) ----------------------------------

    def exchange(
        self, member: str, iteration: int, clock: float, final: bool
    ) -> Dict[str, Any]:
        with self._lock:
            self._arrivals[member] = {
                "iteration": iteration, "clock": clock, "final": final,
            }
        self._wait(self._exchange_barrier, member, "exchange")
        return self._outcome

    def commit(
        self,
        member: str,
        prefix: str,
        ntasks: int,
        iteration: int,
        clock: float,
        seconds: float,
    ) -> WorkflowLine:
        with self._lock:
            self._commits[member] = {
                "prefix": prefix, "ntasks": ntasks,
                "iteration": iteration, "clock": clock, "seconds": seconds,
            }
        self._wait(self._commit_barrier, member, "line commit")
        return self._line

    def abort(self) -> None:
        """Break both barriers so peers of a crashed member unwind
        instead of blocking out their full timeout."""
        self._exchange_barrier.abort()
        self._commit_barrier.abort()


class WorkflowCoordinator:
    """A set of coupled applications checkpointed as one workflow."""

    def __init__(
        self,
        base: str,
        machine: Optional[Machine] = None,
        pfs: Optional[PIOFS] = None,
        policy: Optional[Any] = None,
        exchange_timeout: float = 30.0,
        events=None,
    ):
        self.base = base
        self.machine = machine or Machine()
        self.pfs = pfs or PIOFS(machine=self.machine)
        #: shared cadence policy deciding the workflow line (one
        #: decision per exchange, serviced by every member); None means
        #: every exchange checkpoints (the mandatory-SOP analogue)
        self.policy = policy
        self.policy_state: Dict[str, Any] = {}
        self.exchange_timeout = exchange_timeout
        self.events = events
        self._members: Dict[str, Tuple[DRMSApplication, tuple, dict]] = {}
        self.couplings: List[Coupling] = []
        #: workflow lines committed across all runs, oldest first
        self.lines: List[WorkflowLine] = []
        self._hub: Optional[_WorkflowHub] = None

    # -- construction ---------------------------------------------------------

    def add_member(
        self,
        name: str,
        main,
        args: Sequence[Any] = (),
        kwargs: Optional[dict] = None,
        **app_options: Any,
    ) -> DRMSApplication:
        """Register a member application (its ``main`` plus fixed args).
        Member checkpoint prefixes are namespaced as ``<base>.<name>``;
        the name rules of :func:`~repro.workflow.manifest.check_member_name`
        keep the namespaces disjoint.

        Members keep a deeper L1 rotation than standalone applications
        (``mlck_keep=4`` unless overridden): pruning a member generation
        tears every older workflow line that references it."""
        check_member_name(name, taken=self._members)
        app_options.setdefault("mlck_keep", 4)
        app = DRMSApplication(
            main, name=name, machine=self.machine, pfs=self.pfs, **app_options
        )
        self._members[name] = (app, tuple(args), dict(kwargs or {}))
        return app

    def couple(
        self, src_member: str, src_array: str, dst_member: str, dst_array: str
    ) -> Coupling:
        """Add a coupling edge: at every exchange boundary,
        ``dst_member.dst_array`` is assigned from
        ``src_member.src_array`` across their independent
        distributions."""
        for member in (src_member, dst_member):
            if member not in self._members:
                raise WorkflowError(f"unknown workflow member {member!r}")
        if src_member == dst_member:
            raise WorkflowError(
                f"coupling {src_member!r} to itself: use an in-member "
                "assignment instead"
            )
        edge = Coupling(src_member, src_array, dst_member, dst_array)
        self.couplings.append(edge)
        return edge

    @property
    def member_names(self) -> List[str]:
        return list(self._members)

    def member(self, name: str) -> DRMSApplication:
        return self._members[name][0]

    def member_base(self, name: str) -> str:
        """The checkpoint namespace of one member."""
        return f"{self.base}.{name}"

    def _l1_stores(self) -> Dict[str, Any]:
        return {
            name: app.l1_store_for(self.member_base(name))
            for name, (app, _, _) in self._members.items()
        }

    # -- running --------------------------------------------------------------

    def run(self, tasks: Mapping[str, int]) -> WorkflowRunReport:
        """Run every member from the beginning, concurrently, on its own
        task count; exchange boundaries align them and commit workflow
        lines per the shared policy."""
        return self._run_ensemble(dict(tasks), restart=None)

    def restart_workflow(
        self,
        tasks: Mapping[str, int],
        generation: Optional[int] = None,
    ) -> WorkflowRunReport:
        """Restart the whole ensemble from the newest workflow
        generation whose every member state is byte-valid (or from an
        explicit ``generation``, still validated).  Each member may come
        back on a different task count than it checkpointed with; the
        recovery walk serves members from L1 memory replicas where they
        verify and from the PFS otherwise."""
        decision = self._select(generation)
        if decision.generation is None:
            detail = "; ".join(
                f"gen {g}: {errs[0]}" for g, errs in decision.rejected[:3]
            )
            raise WorkflowError(
                f"no workflow generation under {self.base!r} has every "
                "member byte-valid" + (f" ({detail})" if detail else "")
            )
        prefixes = {
            name: entry["prefix"]
            for name, entry in decision.manifest["members"].items()
        }
        missing = set(self._members) - set(prefixes)
        if missing:
            raise WorkflowError(
                f"workflow generation {decision.generation} does not "
                f"cover members {sorted(missing)}"
            )
        obs = get_tracer()
        obs.metrics.counter("workflow.restarts").inc()
        fr = get_flight()
        if fr.enabled:
            fr.record(
                "workflow_restarted", node=GLOBAL_NODE,
                base=self.base, generation=decision.generation,
                tiers=dict(decision.member_tiers),
                tasks={n: int(t) for n, t in tasks.items()},
            )
        report = self._run_ensemble(dict(tasks), restart=prefixes)
        report.decision = decision
        return report

    def select_restart_line(self) -> WorkflowDecision:
        """The recovery walk alone (no relaunch): newest-to-oldest over
        committed workflow generations, torn lines rejected as units."""
        return select_workflow_restart_state(
            self.pfs, self.base, l1_stores=self._l1_stores(),
            events=self.events,
        )

    def _select(self, generation: Optional[int]) -> WorkflowDecision:
        if generation is None:
            return self.select_restart_line()
        from repro.workflow.manifest import validate_workflow_line

        manifest = read_workflow_manifest(self.pfs, self.base, generation)
        report = validate_workflow_line(self.pfs, manifest, self._l1_stores())
        if not report.ok:
            return WorkflowDecision(
                base=self.base, generation=None,
                rejected=[(generation, list(report.errors))],
            )
        return WorkflowDecision(
            base=self.base, generation=generation, manifest=manifest,
            member_tiers=dict(report.member_tiers),
        )

    # -- ensemble execution ---------------------------------------------------

    def _check_tasks(self, tasks: Dict[str, int]) -> None:
        missing = set(self._members) - set(tasks)
        if missing:
            raise ReconfigurationError(
                f"no task counts for workflow members {sorted(missing)}"
            )
        for name, n in tasks.items():
            if name in self._members:
                self._members[name][0].soq.check(n)

    def _member_nodes(self, tasks: Dict[str, int]) -> Dict[str, Optional[List[int]]]:
        """Disjoint node sets per member when the machine has capacity
        (so failures and L1 replica placement stay member-local);
        members overlap from node 0 otherwise, like space-shared jobs
        forced to time-share."""
        up = self.machine.up_nodes()
        if sum(tasks[n] for n in self._members) > len(up):
            return {name: None for name in self._members}
        out: Dict[str, Optional[List[int]]] = {}
        cursor = 0
        for name in self._members:
            out[name] = up[cursor : cursor + tasks[name]]
            cursor += tasks[name]
        return out

    def _run_ensemble(
        self, tasks: Dict[str, int], restart: Optional[Dict[str, str]]
    ) -> WorkflowRunReport:
        if not self._members:
            raise WorkflowError("workflow has no members")
        self._check_tasks(tasks)
        self.policy_state = {}
        self._hub = _WorkflowHub(self, list(self._members))
        nodes = self._member_nodes(tasks)
        report = WorkflowRunReport()
        first_line = len(self.lines)
        errors: Dict[str, BaseException] = {}

        def runner(name: str) -> None:
            app, args, kwargs = self._members[name]
            app.workflow = (self._hub, name, self.member_base(name))
            try:
                if restart is None:
                    report.members[name] = app.start(
                        tasks[name], args=args, kwargs=kwargs, nodes=nodes[name]
                    )
                else:
                    report.members[name] = app.restart(
                        restart[name], tasks[name],
                        args=args, kwargs=kwargs, nodes=nodes[name],
                    )
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[name] = exc
                self._hub.abort()
            finally:
                app.workflow = None

        threads = [
            threading.Thread(target=runner, args=(name,), name=f"wf-{name}")
            for name in self._members
        ]
        for t in threads:
            t.start()
        join_timeout = max(
            app.run_timeout for app, _, _ in self._members.values()
        ) + 30.0
        for t in threads:
            t.join(timeout=join_timeout)
        hung = [t.name for t in threads if t.is_alive()]
        if hung:
            self._hub.abort()
            for t in threads:
                t.join(timeout=5.0)
            raise WorkflowError(f"workflow members did not finish: {hung}")
        if errors:
            # Prefer the root cause over the WorkflowError echoes the
            # broken barriers produced in peer members.
            primary = next(
                (e for e in errors.values() if not isinstance(e, WorkflowError)),
                None,
            )
            raise primary if primary is not None else next(iter(errors.values()))
        report.lines = self.lines[first_line:]
        return report

    # -- hub actions (one thread, all members parked at the boundary) ---------

    def _exchange_action(self, arrivals: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
        """The coordinator's turn at an exchange boundary: steering,
        coupling transfers, and the single ensemble cadence decision."""
        obs = get_tracer()
        obs.metrics.counter("workflow.exchanges").inc()
        clock = max((a["clock"] for a in arrivals.values()), default=0.0)
        iteration = max((a["iteration"] for a in arrivals.values()), default=0)
        final = all(a["final"] for a in arrivals.values()) and bool(arrivals)

        steered = 0
        runtimes = {}
        for name, (app, _, _) in self._members.items():
            rt = app._last_runtime
            if rt is None:
                raise WorkflowError(f"member {name!r} has no live runtime")
            runtimes[name] = rt
            steered += app.steering.service(rt.arrays)
        if steered:
            obs.metrics.counter("workflow.steered").inc(steered)

        transfer_bytes = {name: 0 for name in self._members}
        for edge in self.couplings:
            src_rt = runtimes[edge.src_member]
            dst_rt = runtimes[edge.dst_member]
            try:
                src = src_rt.arrays[edge.src_array]
                dst = dst_rt.arrays[edge.dst_array]
            except KeyError as exc:
                raise WorkflowError(
                    f"coupling {edge.src_member}.{edge.src_array} -> "
                    f"{edge.dst_member}.{edge.dst_array}: no such array "
                    f"{exc.args[0]!r} at this exchange"
                ) from None
            try:
                wire = app_transfer(dst, src)
            except ArrayError as exc:
                raise WorkflowError(
                    f"coupling {edge.src_member}.{edge.src_array} -> "
                    f"{edge.dst_member}.{edge.dst_array}: {exc}"
                ) from exc
            transfer_bytes[edge.src_member] += wire
            transfer_bytes[edge.dst_member] += wire
        total_wire = sum(transfer_bytes.values()) // 2
        if total_wire:
            obs.metrics.counter("workflow.transfer.bytes").inc(total_wire)

        if self.policy is not None:
            from repro.policy.rules import Observation

            decision = self.policy.decide(
                Observation(iteration=iteration, sim_time=clock, final=final),
                self.policy_state,
            )
            fire = decision.fire
        else:
            fire = True

        outcome: Dict[str, Any] = {
            "fire": fire,
            "generation": None,
            "prefixes": {},
            "transfer_bytes": transfer_bytes,
            "steered": steered,
            "clock": clock,
            "iteration": iteration,
        }
        if fire:
            bases = {n: self.member_base(n) for n in self._members}
            gen = next_workflow_generation(self.pfs, self.base, bases)
            outcome["generation"] = gen
            for name, (app, _, _) in self._members.items():
                # mlck members checkpoint under their rotation base (the
                # engine numbers the generation); PFS members take the
                # workflow generation number directly.  The commit
                # records the *actual* prefixes either way.
                if app.tier == "memory+pfs":
                    outcome["prefixes"][name] = bases[name]
                else:
                    outcome["prefixes"][name] = f"{bases[name]}.{gen:06d}"
        fr = get_flight()
        if fr.enabled:
            fr.record(
                "workflow_exchange", node=GLOBAL_NODE, time=clock,
                base=self.base, iteration=iteration, fire=fire,
                generation=outcome["generation"], steered=steered,
                wire_bytes=total_wire,
            )
        return outcome

    def _commit_action(
        self, outcome: Dict[str, Any], commits: Dict[str, Dict[str, Any]]
    ) -> WorkflowLine:
        """Every member reported its checkpoint complete: seal the line
        with the two-phase workflow manifest."""
        missing = set(self._members) - set(commits)
        if missing:
            raise WorkflowError(
                f"workflow line {outcome['generation']} missing member "
                f"checkpoints {sorted(missing)}"
            )
        gen = outcome["generation"]
        clock = max(c["clock"] for c in commits.values())
        members = {
            name: {
                "prefix": entry["prefix"],
                "ntasks": entry["ntasks"],
                "iteration": entry["iteration"],
                "tier": self._members[name][0].tier,
                "seconds": entry["seconds"],
            }
            for name, entry in commits.items()
        }
        write_workflow_manifest(
            self.pfs, self.base, gen,
            {
                "members": members,
                "couplings": [
                    [e.src_member, e.src_array, e.dst_member, e.dst_array]
                    for e in self.couplings
                ],
                "clock": clock,
            },
        )
        line = WorkflowLine(generation=gen, members=members, clock=clock)
        self.lines.append(line)
        obs = get_tracer()
        obs.metrics.counter("workflow.lines.committed").inc()
        obs.metrics.histogram("workflow.line.seconds").observe(line.seconds)
        if self.policy is not None:
            self.policy.observe_cost(self.policy_state, line.seconds)
        fr = get_flight()
        if fr.enabled:
            fr.record(
                "workflow_line_committed", node=GLOBAL_NODE, time=clock,
                base=self.base, generation=gen,
                members={n: m["prefix"] for n, m in members.items()},
                seconds=line.seconds,
            )
        if self.events is not None:
            self.events.emit(
                clock, "workflow_line_committed",
                base=self.base, generation=gen,
                members={n: m["prefix"] for n, m in members.items()},
            )
        return line

    # -- introspection --------------------------------------------------------

    def committed_generations(self) -> List[int]:
        """Workflow generations with a committed manifest, oldest first."""
        return workflow_generations(self.pfs, self.base)

    def __repr__(self) -> str:
        return (
            f"WorkflowCoordinator({self.base!r}, "
            f"members={list(self._members)}, "
            f"couplings={len(self.couplings)})"
        )
