"""Coupled multi-application workflows with consistent snapshots.

A *workflow snapshot* (muscle3's glossary) is a set of per-member
checkpoints that is mutually consistent across peer applications.  This
package drives N coupled :class:`~repro.drms.app.DRMSApplication`
members to a common quiescent exchange boundary, checkpoints each one
there, and tags the set as one **workflow generation** recorded in a v1
workflow manifest; restart selects the newest generation whose *every*
member state is byte-valid and relaunches the whole ensemble from it —
each member free to come back at a different task count, some served
from L1 memory replicas and others from the PFS.
"""

from repro.workflow.coordinator import (
    WorkflowCoordinator,
    WorkflowLine,
    WorkflowRunReport,
)
from repro.workflow.manifest import (
    WORKFLOW_VERSION,
    WorkflowDecision,
    WorkflowValidation,
    check_member_name,
    newest_consistent_generations,
    read_workflow_manifest,
    select_workflow_restart_state,
    validate_workflow_line,
    workflow_generations,
    workflow_manifest_name,
    write_workflow_manifest,
)

__all__ = [
    "WORKFLOW_VERSION",
    "WorkflowCoordinator",
    "WorkflowDecision",
    "WorkflowLine",
    "WorkflowRunReport",
    "WorkflowValidation",
    "check_member_name",
    "newest_consistent_generations",
    "read_workflow_manifest",
    "select_workflow_restart_state",
    "validate_workflow_line",
    "workflow_generations",
    "workflow_manifest_name",
    "write_workflow_manifest",
]
